"""Analysis layer: turns collected observations into the paper's results.

Every public function here corresponds to a table, figure, or in-text
statistic from the paper:

* :func:`headline` — Section 4's reachable-address/AS rates.
* :func:`country_tables` — Tables 1 and 2.
* :func:`source_category_table` — Table 3 (inclusive and exclusive).
* :func:`range_histogram` — Figure 2 / Figure 3b histogram series.
* :func:`port_range_table` — Table 4.
* :func:`zero_range_stats` — Section 5.2.1.
* :func:`small_range_patterns` — Section 5.2.3.
* :func:`open_closed_stats` — Section 5.1.
* :func:`forwarding_stats` — Section 5.4.
* :func:`qmin_stats` — Section 3.6.4.
* :func:`local_infiltration_stats` — Section 5.5 (Table 3's DS/LB rows
  viewed as host-stack evidence).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from ..fingerprint.p0f import LABEL_WINDOWS, P0fDatabase
from ..fingerprint.portrange import (
    PortRangeClass,
    RangeObservation,
    is_increasing_with_wrap,
    is_strictly_increasing,
    observe,
)
from ..netsim.geo import GeoDatabase
from ..netsim.routing import RoutingTable
from .collection import Collector, TargetObservation
from .sources import SourceCategory
from .targets import TargetSet

#: Minimum direct port observations needed before a range is computed.
MIN_PORT_SAMPLES = 5


# ---------------------------------------------------------------------------
# Section 4: headline reachability
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FamilyHeadline:
    """Reachability for one address family."""

    targeted_addresses: int
    reachable_addresses: int
    targeted_asns: int
    reachable_asns: int

    @property
    def address_rate(self) -> float:
        return _rate(self.reachable_addresses, self.targeted_addresses)

    @property
    def asn_rate(self) -> float:
        return _rate(self.reachable_asns, self.targeted_asns)


@dataclass(frozen=True, slots=True)
class Headline:
    v4: FamilyHeadline
    v6: FamilyHeadline


def _rate(part: int, whole: int) -> float:
    return part / whole if whole else 0.0


def headline(targets: TargetSet, collector: Collector) -> Headline:
    """Compute the Section 4 headline numbers."""
    def family(version: int) -> FamilyHeadline:
        return FamilyHeadline(
            targeted_addresses=targets.count(version),
            reachable_addresses=len(collector.reachable_targets(version)),
            targeted_asns=len(targets.asns(version)),
            reachable_asns=len(collector.reachable_asns(version)),
        )

    return Headline(v4=family(4), v6=family(6))


# ---------------------------------------------------------------------------
# Tables 1 and 2: per-country reachability
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CountryRow:
    country: str
    total_asns: int
    reachable_asns: int
    total_addresses: int
    reachable_addresses: int

    @property
    def asn_rate(self) -> float:
        return _rate(self.reachable_asns, self.total_asns)

    @property
    def address_rate(self) -> float:
        return _rate(self.reachable_addresses, self.total_addresses)


def country_rows(
    targets: TargetSet,
    collector: Collector,
    geo: GeoDatabase,
    routes: RoutingTable,
) -> list[CountryRow]:
    """Aggregate reachability per country (both families combined).

    As in the paper, an AS is associated with every country any of its
    prefixes geolocates to, so one AS can appear in several rows.
    """
    asn_countries: dict[int, set[str]] = {}

    def countries_for(asn: int) -> set[str]:
        if asn not in asn_countries:
            asn_countries[asn] = geo.countries_of_asn(asn, routes)
        return asn_countries[asn]

    total_asns: dict[str, set[int]] = defaultdict(set)
    reachable_asns: dict[str, set[int]] = defaultdict(set)
    total_addresses: Counter = Counter()
    reachable_addresses: Counter = Counter()

    reachable = {obs.target for obs in collector.reachable_targets()}
    reachable_asn_set = collector.reachable_asns()

    for target in targets.targets:
        country = geo.country_of_address(target.address)
        if country is None:
            continue
        total_addresses[country] += 1
        if target.address in reachable:
            reachable_addresses[country] += 1
        for asn_country in countries_for(target.asn):
            total_asns[asn_country].add(target.asn)
            if target.asn in reachable_asn_set:
                reachable_asns[asn_country].add(target.asn)

    rows = [
        CountryRow(
            country=country,
            total_asns=len(asns),
            reachable_asns=len(reachable_asns.get(country, ())),
            total_addresses=total_addresses.get(country, 0),
            reachable_addresses=reachable_addresses.get(country, 0),
        )
        for country, asns in total_asns.items()
    ]
    rows.sort(key=lambda r: (-r.total_asns, r.country))
    return rows


def table1(rows: list[CountryRow], top: int = 10) -> list[CountryRow]:
    """Top countries by number of ASes in the target set (Table 1)."""
    return sorted(rows, key=lambda r: (-r.total_asns, r.country))[:top]


def table2(rows: list[CountryRow], top: int = 10) -> list[CountryRow]:
    """Top countries by fraction of reachable addresses (Table 2)."""
    return sorted(
        rows, key=lambda r: (-r.address_rate, r.country)
    )[:top]


# ---------------------------------------------------------------------------
# Table 3: spoofed-source category effectiveness
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CategoryCell:
    addresses: int
    asns: int


@dataclass(frozen=True, slots=True)
class CategoryRow:
    category: SourceCategory
    inclusive_v4: CategoryCell
    inclusive_v6: CategoryCell
    exclusive_v4: CategoryCell
    exclusive_v6: CategoryCell


@dataclass
class SourceCategoryTable:
    """Table 3: per-category inclusive and exclusive reach."""

    all_reachable_v4: CategoryCell = CategoryCell(0, 0)
    all_reachable_v6: CategoryCell = CategoryCell(0, 0)
    rows: list[CategoryRow] = field(default_factory=list)
    median_sources_v4: float = 0.0
    median_sources_v6: float = 0.0
    over_50_sources_v4: int = 0
    over_50_sources_v6: int = 0
    #: targets reached by only one or two sources ("for nearly half of
    #: all reachable target IP addresses, only one or two sources
    #: resulted in reachable queries", Section 4.1).
    one_or_two_sources_v4: int = 0
    one_or_two_sources_v6: int = 0


def source_category_table(collector: Collector) -> SourceCategoryTable:
    """Compute Table 3 plus the Section 4.1 source-count statistics."""
    table = SourceCategoryTable()
    reachable = {4: collector.reachable_targets(4), 6: collector.reachable_targets(6)}
    table.all_reachable_v4 = CategoryCell(
        len(reachable[4]), len({o.asn for o in reachable[4]})
    )
    table.all_reachable_v6 = CategoryCell(
        len(reachable[6]), len({o.asn for o in reachable[6]})
    )

    for version in (4, 6):
        counts = sorted(len(o.working_sources) for o in reachable[version])
        median = 0.0
        if counts:
            mid = len(counts) // 2
            median = (
                counts[mid]
                if len(counts) % 2
                else (counts[mid - 1] + counts[mid]) / 2
            )
        over_50 = sum(1 for c in counts if c > 50)
        one_or_two = sum(1 for c in counts if c <= 2)
        if version == 4:
            table.median_sources_v4, table.over_50_sources_v4 = median, over_50
            table.one_or_two_sources_v4 = one_or_two
        else:
            table.median_sources_v6, table.over_50_sources_v6 = median, over_50
            table.one_or_two_sources_v6 = one_or_two

    def cell(
        observations: list[TargetObservation],
        predicate,
    ) -> CategoryCell:
        matched = [o for o in observations if predicate(o)]
        return CategoryCell(len(matched), len({o.asn for o in matched}))

    for category in SourceCategory:
        row = CategoryRow(
            category=category,
            inclusive_v4=cell(reachable[4], lambda o: category in o.categories),
            inclusive_v6=cell(reachable[6], lambda o: category in o.categories),
            exclusive_v4=cell(
                reachable[4], lambda o: o.categories == {category}
            ),
            exclusive_v6=cell(
                reachable[6], lambda o: o.categories == {category}
            ),
        )
        table.rows.append(row)
    return table


# ---------------------------------------------------------------------------
# Port ranges: Figure 2, Figure 3b, Table 4
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ResolverRange:
    """One resolver's port-range observation with context."""

    observation: TargetObservation
    range_observation: RangeObservation
    p0f_label: str | None

    @property
    def range(self) -> int:
        return self.range_observation.range

    @property
    def bucket(self) -> PortRangeClass:
        return self.range_observation.bucket


def resolver_ranges(
    collector: Collector,
    p0f_db: P0fDatabase | None = None,
    *,
    min_samples: int = MIN_PORT_SAMPLES,
) -> list[ResolverRange]:
    """Compute per-resolver port ranges for directly-querying targets.

    Only resolvers that contacted the authoritative servers directly are
    analyzed (Section 5.2), and the Windows wrapped-pool adjustment is
    applied to resolvers p0f identified as Windows (Section 5.3.2).
    """
    db = p0f_db or P0fDatabase.default()
    results: list[ResolverRange] = []
    for observation in collector.observations.values():
        ports = observation.ports
        if len(ports) < min_samples:
            continue
        label = db.classify(
            observation.tcp_signature, observation.observed_ttl
        )
        range_observation = observe(
            ports, windows_adjust=label == LABEL_WINDOWS
        )
        results.append(ResolverRange(observation, range_observation, label))
    return results


@dataclass(frozen=True, slots=True)
class HistogramSeries:
    """Binned counts for one split of a range histogram."""

    label: str
    counts: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class RangeHistogram:
    """Figure 2 / 3b: binned range frequencies, split open vs closed."""

    bin_edges: tuple[int, ...]
    series: tuple[HistogramSeries, ...]

    def total(self) -> int:
        return sum(sum(s.counts) for s in self.series)


def range_histogram(
    ranges: list[ResolverRange],
    *,
    max_range: int = 65536,
    bin_width: int = 512,
    split: str = "status",
) -> RangeHistogram:
    """Bin resolver ranges for plotting.

    ``split`` selects the bar composition: ``"status"`` (open/closed,
    Figure 2) or ``"p0f"`` (Windows/Linux/other, Figure 3b).
    """
    edges = tuple(range(0, max_range + bin_width, bin_width))
    n_bins = len(edges) - 1

    def bin_of(value: int) -> int | None:
        """Bin index, or ``None`` for values beyond the plotted range
        (a zoomed plot cuts off; it does not pile overflow into the
        last bar)."""
        index = value // bin_width
        return index if index < n_bins else None

    if split == "status":
        groups = {"open": [0] * n_bins, "closed": [0] * n_bins}
        for item in ranges:
            index = bin_of(item.range)
            if index is None:
                continue
            key = "open" if item.observation.open_ else "closed"
            groups[key][index] += 1
    elif split == "p0f":
        groups = {
            "Windows": [0] * n_bins,
            "Linux": [0] * n_bins,
            "other/unclassified": [0] * n_bins,
        }
        for item in ranges:
            index = bin_of(item.range)
            if index is None:
                continue
            if item.p0f_label in ("Windows", "Linux"):
                key = item.p0f_label
            else:
                key = "other/unclassified"
            groups[key][index] += 1
    else:
        raise ValueError(f"unknown split: {split!r}")

    return RangeHistogram(
        bin_edges=edges,
        series=tuple(
            HistogramSeries(label, tuple(counts))
            for label, counts in groups.items()
        ),
    )


@dataclass(frozen=True, slots=True)
class Table4Row:
    bucket: PortRangeClass
    total: int
    open_: int
    closed: int
    p0f_windows: int
    p0f_linux: int


def port_range_table(ranges: list[ResolverRange]) -> list[Table4Row]:
    """Compute Table 4: bucket x (status, p0f) counts."""
    rows = []
    for bucket in PortRangeClass:
        members = [r for r in ranges if r.bucket is bucket]
        rows.append(
            Table4Row(
                bucket=bucket,
                total=len(members),
                open_=sum(1 for r in members if r.observation.open_),
                closed=sum(1 for r in members if not r.observation.open_),
                p0f_windows=sum(
                    1 for r in members if r.p0f_label == "Windows"
                ),
                p0f_linux=sum(1 for r in members if r.p0f_label == "Linux"),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Section 5.2.1: zero source-port randomization
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ZeroRangeStats:
    resolvers: int
    asns: int
    closed: int
    open_: int
    port_counts: tuple[tuple[int, int], ...]   # (port, resolver count)
    asns_with_closed: int

    @property
    def closed_fraction(self) -> float:
        return _rate(self.closed, self.resolvers)


def zero_range_stats(ranges: list[ResolverRange]) -> ZeroRangeStats:
    """Summarize the fixed-source-port population (Section 5.2.1)."""
    zero = [r for r in ranges if r.range == 0]
    port_counter: Counter = Counter()
    asns: set[int] = set()
    asns_with_closed: set[int] = set()
    closed = 0
    for item in zero:
        port_counter[item.range_observation.ports[0]] += 1
        asns.add(item.observation.asn)
        if not item.observation.open_:
            closed += 1
            asns_with_closed.add(item.observation.asn)
    return ZeroRangeStats(
        resolvers=len(zero),
        asns=len(asns),
        closed=closed,
        open_=len(zero) - closed,
        port_counts=tuple(port_counter.most_common()),
        asns_with_closed=len(asns_with_closed),
    )


# ---------------------------------------------------------------------------
# Section 5.2.3: ineffective allocation patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SmallRangeStats:
    resolvers: int
    asns: int
    strictly_increasing: int
    increasing_with_wrap: int
    few_unique: int          # <= 7 unique ports out of >= 10 observations


def small_range_patterns(
    ranges: list[ResolverRange], *, low: int = 1, high: int = 200
) -> SmallRangeStats:
    """Analyze resolvers with small non-zero ranges (Section 5.2.3)."""
    members = [r for r in ranges if low <= r.range <= high]
    increasing = 0
    wrapped = 0
    few_unique = 0
    asns: set[int] = set()
    for item in members:
        ports = list(item.range_observation.ports)
        asns.add(item.observation.asn)
        if is_strictly_increasing(ports):
            increasing += 1
        elif is_increasing_with_wrap(ports):
            increasing += 1
            wrapped += 1
        if len(ports) >= 10 and len(set(ports)) <= 7:
            few_unique += 1
    return SmallRangeStats(
        resolvers=len(members),
        asns=len(asns),
        strictly_increasing=increasing,
        increasing_with_wrap=wrapped,
        few_unique=few_unique,
    )


# ---------------------------------------------------------------------------
# Section 5.1: open vs closed
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class OpenClosedStats:
    open_: int
    closed: int
    dsav_lacking_asns: int
    asns_with_closed_resolver: int

    @property
    def closed_fraction(self) -> float:
        return _rate(self.closed, self.open_ + self.closed)

    @property
    def asns_with_closed_fraction(self) -> float:
        return _rate(self.asns_with_closed_resolver, self.dsav_lacking_asns)


def open_closed_stats(collector: Collector) -> OpenClosedStats:
    """Open/closed split and the 88%-of-ASes statistic (Section 5.1)."""
    reachable = collector.reachable_targets()
    open_count = sum(1 for o in reachable if o.open_)
    asns = {o.asn for o in reachable}
    asns_with_closed = {o.asn for o in reachable if not o.open_}
    return OpenClosedStats(
        open_=open_count,
        closed=len(reachable) - open_count,
        dsav_lacking_asns=len(asns),
        asns_with_closed_resolver=len(asns_with_closed),
    )


# ---------------------------------------------------------------------------
# Section 5.4: forwarding
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ForwardingStats:
    resolved: int
    direct: int
    forwarded: int
    both: int

    @property
    def direct_fraction(self) -> float:
        return _rate(self.direct, self.resolved)

    @property
    def forwarded_fraction(self) -> float:
        return _rate(self.forwarded, self.resolved)


def forwarding_stats(collector: Collector, version: int) -> ForwardingStats:
    """Direct vs forwarded follow-up resolution per family (Section 5.4)."""
    observations = [
        o
        for o in collector.observations.values()
        if o.target.version == version and (o.direct or o.forwarded)
    ]
    direct = sum(1 for o in observations if o.direct)
    forwarded = sum(1 for o in observations if o.forwarded)
    both = sum(1 for o in observations if o.direct and o.forwarded)
    return ForwardingStats(
        resolved=len(observations),
        direct=direct,
        forwarded=forwarded,
        both=both,
    )


# ---------------------------------------------------------------------------
# Section 3.6.1: middlebox accounting
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MiddleboxStats:
    """Per-AS evidence classification (Section 3.6.1).

    The paper verifies that its per-AS DSAV verdicts are not middlebox
    artifacts: for most ASes at least one recursive-to-authoritative
    query arrived *from an address inside the target AS* (86% IPv4 /
    95% IPv6); almost all the rest forwarded through major public DNS
    services, which "is not characteristic of middleboxes"; only 1-2%
    remain unexplained.
    """

    reachable_asns: int
    in_as_evidence: int
    public_dns_only: int
    unexplained: int

    @property
    def in_as_fraction(self) -> float:
        return _rate(self.in_as_evidence, self.reachable_asns)

    @property
    def unexplained_fraction(self) -> float:
        return _rate(self.unexplained, self.reachable_asns)


def middlebox_stats(
    collector: Collector,
    routes: RoutingTable,
    public_addresses: frozenset,
    version: int | None = None,
) -> MiddleboxStats:
    """Classify each reachable AS by where its evidence came from.

    *Direct* observations (query source equals the target address) are
    in-AS evidence by definition; forwarded observations count as in-AS
    when the upstream's origin ASN matches the target's, as
    public-DNS when the upstream is one of *public_addresses*.
    """
    in_as: set[int] = set()
    via_public: set[int] = set()
    all_asns: set[int] = set()
    for obs in collector.reachable_targets(version):
        all_asns.add(obs.asn)
        if obs.direct:
            in_as.add(obs.asn)
            continue
        for upstream in obs.forwarder_addresses:
            if routes.origin_asn(upstream) == obs.asn:
                in_as.add(obs.asn)
            elif upstream in public_addresses:
                via_public.add(obs.asn)
    public_only = via_public - in_as
    unexplained = all_asns - in_as - public_only
    return MiddleboxStats(
        reachable_asns=len(all_asns),
        in_as_evidence=len(in_as),
        public_dns_only=len(public_only),
        unexplained=len(unexplained),
    )


# ---------------------------------------------------------------------------
# Section 3.6.4: QNAME minimization accounting
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class QminStats:
    minimizing_sources: int
    minimizing_asns: int
    minimizing_asns_with_dsav_evidence: int

    @property
    def dsav_evidence_fraction(self) -> float:
        return _rate(
            self.minimizing_asns_with_dsav_evidence, self.minimizing_asns
        )


def qmin_stats(collector: Collector) -> QminStats:
    """QNAME-minimization visibility accounting (Section 3.6.4)."""
    reachable_asns = collector.reachable_asns()
    overlap = collector.minimized_asns & reachable_asns
    return QminStats(
        minimizing_sources=len(collector.minimized_sources),
        minimizing_asns=len(collector.minimized_asns),
        minimizing_asns_with_dsav_evidence=len(overlap),
    )


# ---------------------------------------------------------------------------
# Section 5.5: local-system infiltration evidence
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class LocalInfiltrationStats:
    dst_as_src_targets: int
    loopback_targets: int
    dst_as_src_v4: int
    dst_as_src_v6: int
    loopback_v4: int
    loopback_v6: int


def local_infiltration_stats(collector: Collector) -> LocalInfiltrationStats:
    """Targets reached via sources that can only be spoofed (Section 5.5)."""
    ds4 = ds6 = lb4 = lb6 = 0
    for observation in collector.reachable_targets():
        version = observation.target.version
        if SourceCategory.DST_AS_SRC in observation.categories:
            if version == 4:
                ds4 += 1
            else:
                ds6 += 1
        if SourceCategory.LOOPBACK in observation.categories:
            if version == 4:
                lb4 += 1
            else:
                lb6 += 1
    return LocalInfiltrationStats(
        dst_as_src_targets=ds4 + ds6,
        loopback_targets=lb4 + lb6,
        dst_as_src_v4=ds4,
        dst_as_src_v6=ds6,
        loopback_v4=lb4,
        loopback_v6=lb6,
    )
