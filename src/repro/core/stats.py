"""Statistical helpers for reporting measured rates.

Measurement papers report proportions over finite samples; when scaling
the reproduction down, interval estimates say whether a paper figure is
compatible with a synthetic one.  Wilson score intervals behave well for
the small counts the rare-population analyses produce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as scipy_stats


@dataclass(frozen=True, slots=True)
class Proportion:
    """A measured proportion with its confidence interval."""

    successes: int
    trials: int
    low: float
    high: float
    confidence: float

    @property
    def point(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    def contains(self, value: float) -> bool:
        """Whether *value* is compatible with this measurement."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{100 * self.point:.1f}% "
            f"[{100 * self.low:.1f}%, {100 * self.high:.1f}%]"
        )


def wilson_interval(
    successes: int, trials: int, *, confidence: float = 0.95
) -> Proportion:
    """Wilson score interval for a binomial proportion."""
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid counts: {successes}/{trials}")
    if trials == 0:
        return Proportion(0, 0, 0.0, 1.0, confidence)
    z = float(scipy_stats.norm.ppf(0.5 + confidence / 2))
    p = successes / trials
    denom = 1 + z**2 / trials
    center = (p + z**2 / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2))
        / denom
    )
    low = max(0.0, center - margin)
    high = min(1.0, center + margin)
    # Exact endpoints at the extremes (guards against float fuzz).
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return Proportion(successes, trials, low, high, confidence)


def rates_compatible(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    *,
    confidence: float = 0.95,
) -> bool:
    """Whether two proportions' Wilson intervals overlap.

    A coarse two-sample check, used to compare a synthetic campaign's
    rate against the paper's published rate at the paper's scale.
    """
    a = wilson_interval(successes_a, trials_a, confidence=confidence)
    b = wilson_interval(successes_b, trials_b, confidence=confidence)
    return a.low <= b.high and b.low <= a.high
