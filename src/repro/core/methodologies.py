"""Alternative DSAV methodologies for side-by-side comparison (Section 2).

The paper situates its design against two other measurement approaches
and draws quantitative comparisons; this module implements both so all
three can run against the *same* synthetic ground truth:

* **Korczynski et al. (PAM 2020)** — scan the whole address space,
  spoofing, for each destination, "the source IP address just higher
  than the selected destination".  Breadth instead of source diversity.
  The paper reports the per-AS results agree within 1% (48.78% vs
  49.34%) while the sweep's breadth finds more raw addresses and the
  diverse sources find ASes a next-IP-only probe misses.

* **CAIDA Spoofer** — volunteer clients *inside* networks.  The client
  tests OSAV by emitting spoofed packets toward a measurement server;
  the server tests DSAV by sending the client packets spoofed as
  internal addresses.  Coverage is limited to networks hosting a
  volunteer, and NATted clients cannot be DSAV-tested at all — the two
  limitations the paper's design removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ipaddress import ip_address
from random import Random
from typing import TYPE_CHECKING

from ..netsim.addresses import Address, subnet_of
from ..netsim.fabric import Host
from ..netsim.packet import Packet, Transport
from ..netsim.routing import RoutingTable
from .sources import SourceCategory, SpoofedSource, SpoofPlan
from .targets import TargetSet, select_targets

if TYPE_CHECKING:
    from ..scenarios.internet import BuiltScenario


# ---------------------------------------------------------------------------
# Korczynski-style next-IP scan
# ---------------------------------------------------------------------------


def next_ip_source(target: Address) -> Address:
    """The PAM 2020 source choice: the address just above the target.

    Stays inside the target's /24 (or /64): at the subnet's top the
    source steps down instead, so the spoof still looks same-prefix.
    """
    subnet = subnet_of(target)
    candidate = ip_address(int(target) + 1)
    top = int(subnet.network_address) + subnet.num_addresses - 1
    if subnet.version == 4:
        top -= 1  # avoid the broadcast address
    if int(candidate) > top:
        candidate = ip_address(int(target) - 1)
    return candidate


class NextIPPlanner:
    """Planner producing exactly one spoofed source per target.

    Duck-types :class:`~repro.core.sources.SpoofPlanner`; the scanner
    only calls :meth:`plan`.
    """

    def __init__(self, routes: RoutingTable) -> None:
        self.routes = routes

    def plan(self, target: Address) -> SpoofPlan | None:
        asn = self.routes.origin_asn(target)
        if asn is None:
            return None
        return SpoofPlan(
            target,
            asn,
            [SpoofedSource(SourceCategory.SAME_PREFIX, next_ip_source(target))],
        )


def address_space_targets(
    scenario: "BuiltScenario",
    *,
    empties_per_subnet: int = 1,
    seed: int = 0,
) -> TargetSet:
    """The whole-address-space sweep, reduced to its effective content.

    Probing all 2^32 addresses is equivalent (for reachability results)
    to probing every address where something listens plus no-op probes
    at empty addresses; we enumerate every resolver address the
    scenario placed — *including those absent from the DITL trace* —
    plus a sample of empty addresses per /24 to account for the sweep's
    dead traffic.
    """
    rng = Random(seed)
    candidates: list[Address] = []
    for info in scenario.truth.resolvers:
        candidates.extend(info.addresses)
    for system in scenario.fabric.systems():
        for prefix in system.prefixes(4):
            from ..netsim.addresses import limited_subnets

            for subnet in limited_subnets(prefix, 64):
                for _ in range(empties_per_subnet):
                    candidates.append(
                        ip_address(
                            int(subnet.network_address)
                            + 1
                            + rng.randrange(200)
                        )
                    )
    return select_targets(candidates, scenario.routes)


@dataclass
class MethodologyOutcome:
    """Reachability results of one methodology run."""

    name: str
    reachable_addresses: set[Address]
    reachable_asns: set[int]
    tested_asns: set[int]

    @property
    def asn_rate(self) -> float:
        if not self.tested_asns:
            return 0.0
        return len(self.reachable_asns) / len(self.tested_asns)


def run_paper_methodology(
    scenario: "BuiltScenario", *, duration: float = 120.0
) -> MethodologyOutcome:
    """This paper's scan: DITL targets, up-to-101 diverse sources."""
    from .scanner import ScanConfig

    targets = scenario.target_set()
    scanner, collector = scenario.make_scanner(ScanConfig(duration=duration))
    scanner.run()
    return MethodologyOutcome(
        name="deccio-diverse-sources",
        reachable_addresses={
            o.target for o in collector.reachable_targets()
        },
        reachable_asns=collector.reachable_asns(),
        tested_asns=targets.asns(),
    )


def run_next_ip_methodology(
    scenario: "BuiltScenario", *, duration: float = 120.0
) -> MethodologyOutcome:
    """The PAM 2020 scan: whole-space breadth, one next-IP source."""
    from .scanner import ScanConfig

    targets = address_space_targets(scenario, seed=scenario.params.seed)
    planner = NextIPPlanner(scenario.routes)
    scanner, collector = scenario.make_scanner(
        ScanConfig(duration=duration), planner=planner, targets=targets
    )
    scanner.run()
    return MethodologyOutcome(
        name="korczynski-next-ip",
        reachable_addresses={
            o.target for o in collector.reachable_targets()
        },
        reachable_asns=collector.reachable_asns(),
        tested_asns=targets.asns(),
    )


# ---------------------------------------------------------------------------
# CAIDA-Spoofer-style client measurement
# ---------------------------------------------------------------------------


class SpooferServer(Host):
    """Measurement server: records spoofed probes that escaped OSAV and
    emits spoofed-as-internal probes toward clients (DSAV test)."""

    def __init__(self, name: str, asn: int) -> None:
        super().__init__(name, asn)
        #: (claimed source, true AS) pairs received from clients.
        self.received: list[tuple[Address, int]] = []

    def handle_packet(self, packet: Packet) -> None:
        try:
            asn = int(packet.payload.decode("ascii"))
        except (UnicodeDecodeError, ValueError):
            return
        self.received.append((packet.src, asn))

    def probe_client_dsav(self, client: "SpooferClient") -> None:
        """Send the client a packet spoofing an address inside its AS."""
        internal = next_ip_source(client.addresses[0])
        self.send(
            Packet(
                src=internal,
                dst=client.addresses[0],
                sport=53146,
                dport=53146,
                payload=b"dsav-probe",
                transport=Transport.UDP,
            )
        )


class SpooferClient(Host):
    """Volunteer client inside a tested network."""

    def __init__(self, name: str, asn: int, *, natted: bool = False) -> None:
        super().__init__(name, asn)
        #: NATted clients have no public address the server can target,
        #: so their networks cannot be DSAV-tested (Section 2).
        self.natted = natted
        self.dsav_probe_received = False

    def handle_packet(self, packet: Packet) -> None:
        if packet.payload == b"dsav-probe":
            self.dsav_probe_received = True

    def run_osav_test(self, server: Address) -> None:
        """Emit a probe spoofing an address from a *different* network."""
        spoofed = ip_address("203.0.113.7")
        self.send(
            Packet(
                src=spoofed,
                dst=server,
                sport=53146,
                dport=53146,
                payload=str(self.asn).encode("ascii"),
                transport=Transport.UDP,
            )
        )


@dataclass
class SpooferSurvey:
    """Results of a Spoofer-style deployment across volunteer ASes."""

    osav_lacking_asns: set[int] = field(default_factory=set)
    dsav_lacking_asns: set[int] = field(default_factory=set)
    dsav_untestable_asns: set[int] = field(default_factory=set)
    volunteer_asns: set[int] = field(default_factory=set)


def run_spoofer_survey(
    scenario: "BuiltScenario",
    *,
    volunteer_fraction: float = 0.4,
    nat_fraction: float = 0.5,
    seed: int = 0,
) -> SpooferSurvey:
    """Deploy Spoofer-style clients in a random subset of target ASes.

    Coverage is opt-in: only ``volunteer_fraction`` of ASes host a
    client, and ``nat_fraction`` of those sit behind NAT and cannot be
    DSAV-tested — the two limitations of Section 2.
    """
    from ..scenarios.internet import FIRST_TARGET_ASN, MEASUREMENT_ASN

    rng = Random(seed)
    fabric = scenario.fabric
    # The server needs a spoofing-capable network for its outbound DSAV
    # probes; the measurement AS (no OSAV) is exactly that.
    server = SpooferServer("spoofer-server", MEASUREMENT_ASN)
    measurement_prefix = fabric.system(MEASUREMENT_ASN).prefixes(4)[0]
    fabric.attach(
        server, ip_address(int(measurement_prefix.network_address) + 9)
    )

    survey = SpooferSurvey()
    clients: list[SpooferClient] = []
    offset = 0
    for system in fabric.systems():
        if not (
            FIRST_TARGET_ASN
            <= system.asn
            < FIRST_TARGET_ASN + scenario.params.n_ases
        ):
            continue
        if rng.random() >= volunteer_fraction:
            continue
        natted = rng.random() < nat_fraction
        client = SpooferClient(
            f"spoofer-{system.asn}", system.asn, natted=natted
        )
        prefix = system.prefixes(4)[0]
        # Pick an unbound client address.
        address = None
        for _ in range(64):
            offset += 1
            candidate = ip_address(
                int(prefix.network_address) + 200 + (offset % 50)
            )
            if fabric.host_at(candidate) is None:
                address = candidate
                break
        if address is None:
            continue
        fabric.attach(client, address)
        clients.append(client)
        survey.volunteer_asns.add(system.asn)

    for client in clients:
        client.run_osav_test(server.addresses[0])
        if client.natted:
            survey.dsav_untestable_asns.add(client.asn)
        else:
            server.probe_client_dsav(client)
    fabric.run()

    survey.osav_lacking_asns = {asn for _, asn in server.received}
    survey.dsav_lacking_asns = {
        client.asn for client in clients if client.dsav_probe_received
    }
    return survey
