"""Spoofed-source selection (Section 3.2).

For every target the scan prepares up to 101 spoofed source addresses
drawn from five categories, each probing a different filtering failure:

* **other prefix** — up to 97 addresses, one from each /24 (IPv4) or /64
  (IPv6) announced by the target's AS other than the target's own
  subnet;
* **same prefix** — one address from the target's own /24 or /64;
* **private / unique local** — 192.168.0.10 or fc00::10;
* **destination-as-source** — the target address itself;
* **loopback** — 127.0.0.1 or ::1.

IPv6 prefix selection prefers /64s containing addresses from a hit list
(a stand-in for the Gasser et al. IPv6 hitlist the paper used), and host
selection within a /64 is limited to the first 100 addresses.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from random import Random

from ..netsim.addresses import (
    LOOPBACK_V4,
    LOOPBACK_V6,
    PRIVATE_SOURCE_V4,
    PRIVATE_SOURCE_V6,
    Address,
    Network,
    intern_address,
    limited_subnets,
    random_host_in_subnet,
    subnet_of,
)
from ..netsim.routing import RoutingTable

#: Maximum number of other-prefix sources per target (Section 3.2's 97).
MAX_OTHER_PREFIX = 97


class SourceCategory(enum.Enum):
    """The five spoofed-source categories of Section 3.2."""

    OTHER_PREFIX = "other-prefix"
    SAME_PREFIX = "same-prefix"
    PRIVATE = "private"
    DST_AS_SRC = "dst-as-src"
    LOOPBACK = "loopback"


@dataclass(frozen=True, slots=True)
class SpoofedSource:
    """One planned spoofed source for a target."""

    category: SourceCategory
    address: Address


@dataclass
class SpoofPlan:
    """The ordered list of spoofed sources to try against one target."""

    target: Address
    asn: int
    sources: list[SpoofedSource]

    def by_category(self, category: SourceCategory) -> list[SpoofedSource]:
        return [s for s in self.sources if s.category is category]

    def __len__(self) -> int:
        return len(self.sources)


class SpoofPlanner:
    """Builds :class:`SpoofPlan` objects from routing state.

    ``hitlist`` maps /64 prefixes (as networks) considered "active" —
    the IPv6 prefix-preference input.  A planner is deterministic for a
    given seed, independent of call order, because each target derives
    its own child RNG.
    """

    def __init__(
        self,
        routes: RoutingTable,
        *,
        seed: int = 0,
        max_other_prefix: int = MAX_OTHER_PREFIX,
        hitlist: frozenset[Network] = frozenset(),
        categories: frozenset[SourceCategory] = frozenset(SourceCategory),
    ) -> None:
        self.routes = routes
        self.seed = seed
        self.max_other_prefix = max_other_prefix
        self.hitlist = hitlist
        self.categories = categories

    def plan(self, target: Address) -> SpoofPlan | None:
        """Return the spoof plan for *target*, or ``None`` if unroutable.

        Targets whose AS announces no other prefix from which to derive
        sources are still planned (with an empty other-prefix category),
        but targets with no announced route at all are excluded — the
        paper dropped 36,027 such addresses (Section 3.1).
        """
        asn = self.routes.origin_asn(target)
        if asn is None:
            return None
        target = intern_address(target)
        # A per-target child RNG keyed by a stable hash (str hashing is
        # process-salted and would break reproducibility).
        rng = Random(zlib.crc32(f"{self.seed}:{target}".encode()))
        sources: list[SpoofedSource] = []
        if SourceCategory.OTHER_PREFIX in self.categories:
            sources.extend(self._other_prefix(target, asn, rng))
        if SourceCategory.SAME_PREFIX in self.categories:
            same = self._same_prefix(target, rng)
            if same is not None:
                sources.append(same)
        if SourceCategory.PRIVATE in self.categories:
            private = PRIVATE_SOURCE_V4 if target.version == 4 else PRIVATE_SOURCE_V6
            sources.append(SpoofedSource(SourceCategory.PRIVATE, private))
        if SourceCategory.DST_AS_SRC in self.categories:
            sources.append(SpoofedSource(SourceCategory.DST_AS_SRC, target))
        if SourceCategory.LOOPBACK in self.categories:
            loopback = LOOPBACK_V4 if target.version == 4 else LOOPBACK_V6
            sources.append(SpoofedSource(SourceCategory.LOOPBACK, loopback))
        return SpoofPlan(target, asn, sources)

    # -- category builders -------------------------------------------------

    def _other_prefix(
        self, target: Address, asn: int, rng: Random
    ) -> list[SpoofedSource]:
        target_subnet = subnet_of(target)
        candidates: list[Network] = []
        # Cap enumeration well above the selection limit so shuffling
        # still has diversity to draw from, without walking sparse IPv6
        # space subnet by subnet.
        per_prefix_cap = max(self.max_other_prefix * 4, 8)
        for prefix in self.routes.prefixes_for_asn(asn):
            if prefix.version != target.version:
                continue
            for subnet in limited_subnets(
                prefix, per_prefix_cap, self.hitlist
            ):
                if subnet == target_subnet:
                    continue
                candidates.append(subnet)
        if not candidates:
            return []
        if target.version == 6 and self.hitlist:
            preferred = [c for c in candidates if c in self.hitlist]
            others = [c for c in candidates if c not in self.hitlist]
            rng.shuffle(preferred)
            rng.shuffle(others)
            ordered = preferred + others
        else:
            rng.shuffle(ordered := candidates)
        chosen = ordered[: self.max_other_prefix]
        # Spoofed sources become packet fields and probe-index keys for
        # the whole campaign; interned addresses hash once, not per use.
        return [
            SpoofedSource(
                SourceCategory.OTHER_PREFIX,
                intern_address(random_host_in_subnet(subnet, rng)),
            )
            for subnet in chosen
        ]

    def _same_prefix(
        self, target: Address, rng: Random
    ) -> SpoofedSource | None:
        subnet = subnet_of(target)
        # Draw an address distinct from the target itself; a /24 or /64
        # always has room, but guard against pathological luck.
        for _ in range(16):
            address = random_host_in_subnet(subnet, rng)
            if address != target:
                return SpoofedSource(
                    SourceCategory.SAME_PREFIX, intern_address(address)
                )
        return None
