"""Staged campaign pipeline: build → scan → collect → analyze → report.

The one-call :class:`~repro.core.campaign.Campaign` API runs the whole
study inside a single process.  This module breaks the same campaign
into five explicit stages, each consuming and producing a versioned,
JSON-serializable artifact:

====================  =====================================================
stage                 artifact
====================  =====================================================
``build``             (none — the scenario is a pure function of the spec)
``scan``              ``shard-NNN.json`` per shard: scan counters + the
                      shard's serialized :class:`Collector` state
``collect``           ``observations.json``: the merged collection
``analyze``           ``results.json``: the full :meth:`results_dict`
``report``            ``report.txt``: the rendered text report
====================  =====================================================

The scan stage is *shard-parallel*: the target ASes are partitioned into
``shards`` disjoint subsets (``asn % shards``) and each subset is
scanned by its own worker process against a private, independently built
copy of the synthetic Internet.  The merge in ``collect`` folds the
per-shard observations back together.

Why the merge is byte-identical to the single-process run
---------------------------------------------------------

Sharding by AS works because every result-affecting interaction in the
simulation is local to one target AS plus the shared (but stateless)
measurement infrastructure:

* probe identifiers, schedule offsets, packet loss, and latencies are
  pure functions of ``(seed, packet content)`` — never a position in a
  consumed RNG stream (see :mod:`repro.netsim.determinism`);
* per-AS behaviour (resolvers, ACLs, forwarders) is driven by per-AS
  RNGs derived from ``(seed, asn)``, so building the full Internet in
  every worker yields bit-identical ASes regardless of which shard
  scans them;
* the shared public DNS service is *stateless* (``NullCache``), so its
  responses are pure functions of the individual query.

A shard therefore observes exactly what the full campaign would have
observed for its targets, and :meth:`Collector.canonicalize` removes
the one remaining difference — event-arrival insertion order — before
analysis.

Persisting the stage artifacts into a run directory makes campaigns
resumable: ``repro-dsav scan --resume <dir>`` re-runs only the stages
whose artifacts are missing.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..obs.export import telemetry_payload, write_telemetry
from ..obs.metrics import MetricsRegistry
from ..obs.spans import SpanRecorder, activate, span
from .campaign import Campaign, ScanMetadata
from .collection import Collector
from .scanner import ScanConfig
from .targets import TargetSet

if TYPE_CHECKING:
    from ..scenarios.internet import BuiltScenario

#: Version stamped into every artifact this module writes.  Readers
#: refuse artifacts from a different version rather than guessing.
ARTIFACT_SCHEMA_VERSION = 1

#: Stage names, in execution order.
STAGES = ("build", "scan", "collect", "analyze", "report")


@dataclass
class CampaignSpec:
    """Everything needed to (re)run one campaign deterministically.

    ``scan`` holds the :class:`ScanConfig` fields as a plain dict so the
    spec survives a JSON round trip; :meth:`scan_config` rebuilds the
    config object.  The spec is the identity of a run directory — a
    resume against a directory created from a different spec is refused.
    """

    seed: int = 2019
    n_ases: int = 150
    shards: int = 1
    #: collect campaign telemetry (metrics + spans) into
    #: ``telemetry.json``.  Never affects ``results.json``.
    metrics: bool = False
    #: record the per-probe event journal into ``events.ndjson``.
    #: Requires a run directory; never affects ``results.json``.
    journal: bool = False
    scan: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")

    @classmethod
    def from_scan_config(
        cls,
        *,
        seed: int,
        n_ases: int,
        shards: int,
        config: ScanConfig,
        metrics: bool = False,
        journal: bool = False,
    ) -> "CampaignSpec":
        return cls(
            seed=seed,
            n_ases=n_ases,
            shards=shards,
            metrics=metrics,
            journal=journal,
            scan=asdict(config),
        )

    def scan_config(self) -> ScanConfig:
        return ScanConfig(**self.scan)

    def to_payload(self) -> dict[str, Any]:
        return {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "seed": self.seed,
            "n_ases": self.n_ases,
            "shards": self.shards,
            "metrics": self.metrics,
            "journal": self.journal,
            "scan": dict(self.scan),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "CampaignSpec":
        _check_version(payload, "campaign spec")
        return cls(
            seed=payload["seed"],
            n_ases=payload["n_ases"],
            shards=payload["shards"],
            metrics=payload.get("metrics", False),
            journal=payload.get("journal", False),
            scan=dict(payload["scan"]),
        )


def _check_version(payload: dict[str, Any], what: str) -> None:
    version = payload.get("schema_version")
    if version != ARTIFACT_SCHEMA_VERSION:
        raise ValueError(
            f"{what} has schema_version={version!r}, "
            f"this code reads version {ARTIFACT_SCHEMA_VERSION}"
        )


class RunDirectory:
    """Artifact store for one pipeline run.

    Lays out ``manifest.json`` (the spec plus stage bookkeeping),
    ``shard-NNN.json`` per scan shard, ``observations.json``,
    ``results.json``, and ``report.txt`` under one directory.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    # -- paths -----------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.path / "manifest.json"

    def shard_path(self, shard_id: int) -> Path:
        return self.path / f"shard-{shard_id:03d}.json"

    @property
    def observations_path(self) -> Path:
        return self.path / "observations.json"

    @property
    def results_path(self) -> Path:
        return self.path / "results.json"

    @property
    def report_path(self) -> Path:
        return self.path / "report.txt"

    @property
    def telemetry_path(self) -> Path:
        return self.path / "telemetry.json"

    @property
    def events_path(self) -> Path:
        return self.path / "events.ndjson"

    def shard_events_path(self, shard_id: int) -> Path:
        return self.path / f"events-{shard_id:03d}.ndjson"

    # -- manifest --------------------------------------------------------

    def read_spec(self) -> CampaignSpec:
        """Load the spec recorded in the manifest (for ``--resume``)."""
        manifest = _read_json(self.manifest_path)
        return CampaignSpec.from_payload(manifest["spec"])

    def bind_spec(self, spec: CampaignSpec) -> None:
        """Record *spec* in the manifest, or verify it matches.

        A run directory belongs to exactly one spec; re-entering it with
        different parameters would silently mix artifacts from two
        different campaigns, so that is an error.
        """
        if self.manifest_path.exists():
            recorded = self.read_spec()
            if recorded != spec:
                raise ValueError(
                    f"run directory {self.path} was created for "
                    f"{recorded}, refusing to reuse it for {spec}"
                )
            return
        _write_json(
            self.manifest_path,
            {
                "schema_version": ARTIFACT_SCHEMA_VERSION,
                "spec": spec.to_payload(),
                "stages_completed": [],
            },
        )

    def mark_stage(self, stage: str) -> None:
        manifest = _read_json(self.manifest_path)
        completed = manifest.setdefault("stages_completed", [])
        if stage not in completed:
            completed.append(stage)
            _write_json(self.manifest_path, manifest)


def _read_json(path: Path) -> dict[str, Any]:
    return json.loads(path.read_text())


def _write_json(path: Path, payload: dict[str, Any]) -> None:
    # Write-then-rename so a crash mid-write never leaves a truncated
    # artifact that a later --resume would trust.
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# scan stage (runs in worker processes)
# ---------------------------------------------------------------------------


def run_scan_shard(
    payload: dict[str, Any], progress=None
) -> dict[str, Any]:
    """Scan one shard of the target space; module-level for pickling.

    The worker rebuilds the entire synthetic Internet from the spec —
    scenario construction is a pure function of the seed, so every
    worker's copy is identical — then scans only the targets whose
    ``asn % shards`` equals its shard id.  The campaign duration is
    pinned to the globally computed value so probes are paced exactly
    as in the unsharded run.

    ``progress`` (a live reporter, inline shards only — it does not
    survive pickling into a pool worker) receives per-probe callbacks.
    """
    from ..scenarios import ScenarioParams, build_internet

    spec = CampaignSpec.from_payload(payload["spec"])
    shard_id = payload["shard_id"]
    registry = MetricsRegistry() if spec.metrics else None
    recorder = SpanRecorder() if spec.metrics else None
    journal = None
    if spec.journal:
        from ..obs.journal import Journal

        run_dir = payload.get("run_dir")
        if run_dir is None:
            raise ValueError("journaled scan shard requires a run directory")
        journal = Journal(
            shard_id=shard_id,
            path=Path(run_dir) / f"events-{shard_id:03d}.ndjson",
        )

    def _scan() -> tuple[Any, Any, float]:
        with span("scan.shard", shard=shard_id):
            with span("build"):
                scenario = build_internet(
                    ScenarioParams(seed=spec.seed, n_ases=spec.n_ases)
                )
                full = scenario.target_set()
                shard_targets = TargetSet(
                    targets=[
                        t
                        for t in full.targets
                        if t.asn % spec.shards == shard_id
                    ],
                    stats=full.stats,
                )
                config = spec.scan_config()
                config.pinned_duration = payload["pinned_duration"]
                scanner, collector = scenario.make_scanner(
                    config, targets=shard_targets
                )
                if registry is not None:
                    from ..obs.instrument import instrument_scenario

                    instrument_scenario(registry, scenario)
                    scanner.bind_metrics(registry)
                if journal is not None:
                    from ..obs.instrument import journal_scenario

                    journal_scenario(journal, scenario)
                    scanner.bind_journal(journal)
                if progress is not None:
                    scanner.bind_progress(progress)
            with span("run") as run_span:
                scanner.run()
            if journal is not None:
                journal.flush()
            if registry is not None:
                from ..obs.instrument import harvest_scenario

                harvest_scenario(registry, scenario)
            return scanner, collector, run_span.wall if run_span else 0.0

    if recorder is not None:
        with activate(recorder):
            scanner, collector, wall = _scan()
        # Per-shard wall time legitimately differs run to run and
        # between shardings, hence deterministic=False.
        assert registry is not None
        registry.histogram(
            "scan_shard_wall_seconds",
            "wall-clock seconds each scan shard took",
            buckets=(1.0, 5.0, 15.0, 60.0, 300.0, 1800.0),
            deterministic=False,
        ).observe(wall)
    else:
        from time import perf_counter

        start = perf_counter()
        scanner, collector, run_wall = _scan()
        # Inline shards (workers=0) run under the parent pipeline's
        # span recorder, so the run span still measured the scan
        # proper; detached workers fall back to the outer clock.
        wall = run_wall if run_wall else perf_counter() - start
    metadata = ScanMetadata.from_scanner(scanner, wall_seconds=wall)
    artifact = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "shard_id": shard_id,
        "shards": spec.shards,
        "spec": spec.to_payload(),
        "metadata": metadata.to_payload(),
        "collection": collector.to_payload(),
    }
    if registry is not None and recorder is not None:
        artifact["telemetry"] = {
            "metrics": registry.to_payload(),
            "spans": recorder.to_payload(),
        }
    return artifact


def _global_duration(
    scenario: "BuiltScenario", targets: TargetSet, config: ScanConfig
) -> float:
    """The effective campaign duration of the *unsharded* run.

    Shards must pace probes on the full campaign's timeline, but the
    duration/max_rate stretch in :meth:`Scanner.schedule_campaign` is
    computed from the local probe total — a shard would stretch less.
    The parent recomputes the global figure (the spoof planner is
    per-target deterministic, so counting plans here matches what the
    workers will schedule) and pins it into every shard's config.
    """
    if config.max_rate is None:
        return config.duration
    planner = scenario.make_planner()
    total = 0
    for target in targets.targets:
        plan = planner.plan(target.address)
        if plan is not None:
            total += len(plan.sources)
    if not total:
        return config.duration
    return max(config.duration, total / config.max_rate)


# ---------------------------------------------------------------------------
# the pipeline driver
# ---------------------------------------------------------------------------


@dataclass
class PipelineOutcome:
    """What one pipeline invocation produced.

    ``campaign`` is ``None`` when the analyze stage was resumed from
    disk — the numbers and report are served from the artifacts without
    re-running anything.
    """

    campaign: Campaign | None
    results: dict[str, Any]
    report: str
    run_dir: Path | None
    stages_run: list[str]
    stages_skipped: list[str]
    #: full telemetry payload when the spec enabled metrics, else None.
    #: Lives beside the results (and in ``telemetry.json``), never
    #: inside them — results stay byte-identical with metrics on or off.
    telemetry: dict[str, Any] | None = None


def run_pipeline(
    spec: CampaignSpec,
    *,
    run_dir=None,
    workers: int | None = None,
    progress=None,
) -> PipelineOutcome:
    """Run the staged campaign described by *spec*.

    ``run_dir`` persists stage artifacts (and enables resume: stages
    whose artifacts already exist are skipped).  ``workers`` bounds the
    shard worker processes; ``0`` runs every shard inline in this
    process (useful under test, and what ``shards=1`` effectively is).
    ``progress`` is an optional live reporter (see
    :class:`repro.obs.progress.ProgressReporter`) fed by the scan stage.
    """
    rd = RunDirectory(run_dir) if run_dir is not None else None
    if spec.journal and rd is None:
        raise ValueError(
            "journal=True requires a run directory (events.ndjson needs "
            "somewhere to live)"
        )
    if rd is not None:
        rd.bind_spec(spec)
    stages_run: list[str] = []
    stages_skipped: list[str] = []

    # Fully analyzed run on disk: serve it without rebuilding anything.
    if (
        rd is not None
        and rd.results_path.exists()
        and rd.report_path.exists()
    ):
        results = _read_json(rd.results_path)
        report = rd.report_path.read_text()
        telemetry = (
            _read_json(rd.telemetry_path)
            if rd.telemetry_path.exists()
            else None
        )
        return PipelineOutcome(
            campaign=None,
            results=results,
            report=report,
            run_dir=rd.path,
            stages_run=[],
            stages_skipped=list(STAGES),
            telemetry=telemetry,
        )

    # Span tracing is always on for the pipeline (its cost is a handful
    # of perf_counter calls per *stage*); the metrics registry exists
    # only when the spec asked for telemetry.
    recorder = SpanRecorder()
    registry = MetricsRegistry() if spec.metrics else None

    with activate(recorder), span("pipeline"):
        # -- build: the parent's scenario copy (geo/routes/port history
        # are needed by analyze; the scan workers build their own).
        from ..scenarios import ScenarioParams, build_internet

        with span("build"):
            scenario = build_internet(
                ScenarioParams(seed=spec.seed, n_ases=spec.n_ases)
            )
            targets = scenario.target_set()
        stages_run.append("build")

        # -- scan + collect, or reload the merged observations artifact.
        collector: Collector
        if rd is not None and rd.observations_path.exists():
            artifact = _read_json(rd.observations_path)
            _check_version(artifact, "observations artifact")
            collector = _fresh_collector(scenario)
            collector.absorb_payload(artifact["collection"])
            collector.canonicalize()
            metadata = ScanMetadata.from_payload(artifact["metadata"])
            stages_skipped.extend(["scan", "collect"])
        else:
            with span("scan"):
                shard_payloads = _run_scan_stage(
                    spec, scenario, targets, rd, workers,
                    stages_run, stages_skipped, progress,
                )
                # Fold each shard's telemetry into the campaign-wide
                # view: metrics merge deterministically, span trees
                # graft under this scan span.
                for payload in shard_payloads:
                    shard_telemetry = payload.get("telemetry")
                    if shard_telemetry is None:
                        continue
                    if registry is not None:
                        registry.merge_payload(shard_telemetry["metrics"])
                    for node in shard_telemetry["spans"]["spans"]:
                        recorder.graft_payload(node)
            with span("collect"):
                collector = _fresh_collector(scenario)
                shard_metas = []
                for payload in shard_payloads:
                    collector.absorb_payload(payload["collection"])
                    shard_metas.append(
                        ScanMetadata.from_payload(payload["metadata"])
                    )
                collector.canonicalize()
                metadata = ScanMetadata.merged(shard_metas)
                if spec.journal and rd is not None:
                    from ..obs.journal import merge_shard_journals

                    merge_shard_journals(
                        [
                            rd.shard_events_path(shard_id)
                            for shard_id in range(spec.shards)
                        ],
                        rd.events_path,
                    )
                if rd is not None:
                    _write_json(
                        rd.observations_path,
                        {
                            "schema_version": ARTIFACT_SCHEMA_VERSION,
                            "spec": spec.to_payload(),
                            "metadata": metadata.to_payload(),
                            "collection": collector.to_payload(),
                        },
                    )
                    rd.mark_stage("collect")
            stages_run.append("collect")

        # -- analyze
        metadata.wall_seconds = recorder.elapsed()
        with span("analyze"):
            campaign = Campaign(
                scenario,
                targets,
                None,
                collector,
                scan_wall_seconds=metadata.wall_seconds,
                metadata=metadata,
            )
            results = campaign.results_dict()
            if spec.journal and rd is not None and rd.events_path.exists():
                from ..obs.journal import append_classifications

                append_classifications(rd.events_path, collector)
        if rd is not None:
            _write_json(rd.results_path, results)
            rd.mark_stage("analyze")
        stages_run.append("analyze")

        # -- report
        with span("report"):
            report = campaign.full_report()
        if rd is not None:
            tmp = rd.report_path.with_suffix(".txt.tmp")
            tmp.write_text(report)
            os.replace(tmp, rd.report_path)
            rd.mark_stage("report")
        stages_run.append("report")

    telemetry = None
    if registry is not None:
        telemetry = telemetry_payload(
            registry, recorder, spec=spec.to_payload()
        )
        if rd is not None:
            write_telemetry(rd.telemetry_path, telemetry)

    return PipelineOutcome(
        campaign=campaign,
        results=results,
        report=report,
        run_dir=rd.path if rd is not None else None,
        stages_run=stages_run,
        stages_skipped=stages_skipped,
        telemetry=telemetry,
    )


def resume_pipeline(
    run_dir, *, workers: int | None = None, progress=None
) -> PipelineOutcome:
    """Resume the campaign recorded in *run_dir*'s manifest."""
    rd = RunDirectory(run_dir)
    if not rd.manifest_path.exists():
        raise FileNotFoundError(
            f"{rd.manifest_path} not found: not a pipeline run directory"
        )
    spec = rd.read_spec()
    return run_pipeline(
        spec, run_dir=run_dir, workers=workers, progress=progress
    )


def _fresh_collector(scenario: "BuiltScenario") -> Collector:
    """An empty collector wired for merging shard payloads.

    The merged collector never ingests live query records, so it needs
    no probe index or channel terminators — only the pieces the
    analysis layer reads.
    """
    return Collector(
        codec=scenario.codec,
        probe_index={},
        real_addresses=frozenset(scenario.client.addresses),
        routes=scenario.routes,
    )


def _run_scan_stage(
    spec: CampaignSpec,
    scenario: "BuiltScenario",
    targets: TargetSet,
    rd: RunDirectory | None,
    workers: int | None,
    stages_run: list[str],
    stages_skipped: list[str],
    progress=None,
) -> list[dict[str, Any]]:
    """Produce every shard artifact, reusing any already on disk."""
    pinned = _global_duration(scenario, targets, spec.scan_config())
    payloads: dict[int, dict[str, Any]] = {}
    pending: list[dict[str, Any]] = []
    for shard_id in range(spec.shards):
        reusable = rd is not None and rd.shard_path(shard_id).exists()
        if reusable and spec.journal:
            # A journaled shard is only complete once its events file
            # exists too; otherwise re-run to regenerate both.
            reusable = rd.shard_events_path(shard_id).exists()
        if reusable:
            artifact = _read_json(rd.shard_path(shard_id))
            _check_version(artifact, f"shard {shard_id} artifact")
            payloads[shard_id] = artifact
            stages_skipped.append(f"scan[{shard_id}]")
            if progress is not None:
                progress.shard_done()
            continue
        job = {
            "spec": spec.to_payload(),
            "shard_id": shard_id,
            "pinned_duration": pinned,
        }
        if spec.journal and rd is not None:
            job["run_dir"] = str(rd.path)
        pending.append(job)

    if pending:
        if workers is None:
            workers = min(len(pending), os.cpu_count() or 1)
        if workers <= 0 or len(pending) == 1:
            results = []
            for job in pending:
                if progress is not None:
                    results.append(run_scan_shard(job, progress))
                    progress.shard_done()
                else:
                    results.append(run_scan_shard(job))
        else:
            results = []
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending))
            ) as pool:
                futures = [
                    pool.submit(run_scan_shard, job) for job in pending
                ]
                # as_completed (not map) so the progress line advances
                # the moment any shard lands, whatever its index.
                for future in as_completed(futures):
                    results.append(future.result())
                    if progress is not None:
                        progress.shard_done()
        # Completion order is racy under the pool; log and persist in
        # shard order so stage bookkeeping stays deterministic.
        for artifact in sorted(results, key=lambda a: a["shard_id"]):
            payloads[artifact["shard_id"]] = artifact
            if rd is not None:
                _write_json(rd.shard_path(artifact["shard_id"]), artifact)
            stages_run.append(f"scan[{artifact['shard_id']}]")
    if rd is not None:
        rd.mark_stage("scan")

    # Deterministic merge order regardless of which shards ran live.
    return [payloads[shard_id] for shard_id in range(spec.shards)]
