"""Staged campaign pipeline: build → scan → collect → analyze → report.

The one-call :class:`~repro.core.campaign.Campaign` API runs the whole
study inside a single process.  This module breaks the same campaign
into five explicit stages, each consuming and producing a versioned,
JSON-serializable artifact:

====================  =====================================================
stage                 artifact
====================  =====================================================
``build``             (none — the scenario is a pure function of the spec)
``scan``              ``shard-NNN.json`` per shard: scan counters + the
                      shard's serialized :class:`Collector` state
``collect``           ``observations.json``: the merged collection
``analyze``           ``results.json``: the full :meth:`results_dict`
``report``            ``report.txt``: the rendered text report
====================  =====================================================

The scan stage is *shard-parallel*: the target ASes are partitioned into
``shards`` disjoint subsets — probe-weighted by default, so shards carry
equal probe load and finish together (``asn % shards`` remains available
as ``partition="modulo"``) — and each subset is scanned by its own
worker process.  The scenario is built **once**, in the parent: forked
workers inherit it copy-on-write, non-fork workers load the compiled
scenario artifact the parent wrote into the run directory (see
:mod:`repro.scenarios.compiled`), and only as a last resort does a
worker rebuild from the spec.  The merge in ``collect`` folds the
per-shard observations back together.

Why the merge is byte-identical to the single-process run
---------------------------------------------------------

Sharding by AS works because every result-affecting interaction in the
simulation is local to one target AS plus the shared (but stateless)
measurement infrastructure:

* probe identifiers, schedule offsets, packet loss, and latencies are
  pure functions of ``(seed, packet content)`` — never a position in a
  consumed RNG stream (see :mod:`repro.netsim.determinism`);
* per-AS behaviour (resolvers, ACLs, forwarders) is driven by per-AS
  RNGs derived from ``(seed, asn)``, so every way a worker can obtain
  the full Internet — fork-inherited from the parent, loaded from the
  compiled artifact, or rebuilt from the spec — yields bit-identical
  ASes regardless of which shard scans them;
* the shared public DNS service is *stateless* (``NullCache``), so its
  responses are pure functions of the individual query.

A shard therefore observes exactly what the full campaign would have
observed for its targets, and :meth:`Collector.canonicalize` removes
the one remaining difference — event-arrival insertion order — before
analysis.

Persisting the stage artifacts into a run directory makes campaigns
resumable: ``repro-dsav scan --resume <dir>`` re-runs only the stages
whose artifacts are missing.
"""

from __future__ import annotations

import atexit
import hashlib
import heapq
import json
import multiprocessing
import multiprocessing.connection
import os
import signal
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..netsim.determinism import stable_fraction
from ..netsim.faults import FaultPlan, ShardCrashInjected
from ..netsim.topology import TopologySpec
from ..obs.export import telemetry_payload, write_telemetry
from ..obs.metrics import MetricsRegistry
from ..obs.spans import SpanRecorder, activate, span
from .campaign import Campaign, ScanMetadata
from .collection import Collector
from .scanner import ScanConfig
from .targets import TargetSet

if TYPE_CHECKING:
    from ..scenarios.internet import BuiltScenario

#: Version stamped into every artifact this module writes.  Readers
#: refuse artifacts from a different version rather than guessing.
ARTIFACT_SCHEMA_VERSION = 1

#: Stage names, in execution order.
STAGES = ("build", "scan", "collect", "analyze", "report")

#: Executions allowed per scan shard (1 initial + capped re-runs of a
#: crashed or killed worker) before the run is declared partial.
MAX_SHARD_ATTEMPTS = 3

#: Seconds between hung-worker heartbeat checks while a pool is busy.
_HANG_POLL = 2.0


class PipelineError(RuntimeError):
    """Base for pipeline failures with CLI exit-code semantics."""

    #: process exit code the CLI maps this failure to.
    exit_code = 1


class ArtifactCorruptError(PipelineError):
    """A stage artifact failed its checksum or would not parse.

    The offending file has been quarantined (renamed aside) so a
    ``--resume`` regenerates it instead of trusting it.
    """

    exit_code = 4


class PartialScanError(PipelineError):
    """Some scan shards exhausted their re-execution attempts.

    Every shard that did complete has its artifact persisted, so the
    run is resumable once the underlying cause is fixed.
    """

    exit_code = 3

    def __init__(self, message: str, failed_shards: list[int]) -> None:
        super().__init__(message)
        self.failed_shards = failed_shards


@dataclass
class CampaignSpec:
    """Everything needed to (re)run one campaign deterministically.

    ``scan`` holds the :class:`ScanConfig` fields as a plain dict so the
    spec survives a JSON round trip; :meth:`scan_config` rebuilds the
    config object.  The spec is the identity of a run directory — a
    resume against a directory created from a different spec is refused.
    """

    seed: int = 2019
    n_ases: int = 150
    shards: int = 1
    #: how target ASes are assigned to shards.  ``"weighted"`` (the
    #: default) balances *planned probe counts* across shards with a
    #: greedy longest-processing-time fit, so shards finish together;
    #: ``"modulo"`` is the original ``asn % shards`` split.  Both yield
    #: byte-identical merged results — only wall-clock balance differs.
    partition: str = "weighted"
    #: collect campaign telemetry (metrics + spans) into
    #: ``telemetry.json``.  Never affects ``results.json``.
    metrics: bool = False
    #: record the per-probe event journal into ``events.ndjson``.
    #: Requires a run directory; never affects ``results.json``.
    journal: bool = False
    #: stream periodic telemetry snapshots into per-shard
    #: ``telemetry-stream-NNN.ndjson`` files for live observation
    #: (``repro watch``).  Requires a run directory; advisory only —
    #: never affects ``results.json`` or ``telemetry.json``.
    stream: bool = False
    #: serialized :class:`~repro.netsim.faults.FaultPlan` payload, or
    #: ``None`` for a fault-free campaign.  Stored as part of the spec
    #: so a resumed run injects exactly the same faults.
    faults: dict[str, Any] | None = None
    #: serialized :class:`~repro.netsim.topology.TopologySpec` payload,
    #: or ``None`` for the legacy star topology.  Part of the spec (and
    #: hence the scenario content key), so shards and resumes build the
    #: same world.
    topology: dict[str, Any] | None = None
    #: longitudinal evolution payload ``{"plan": <EvolutionPlan
    #: payload>, "epoch": N}``, or ``None`` outside campaigns.  Folded
    #: into the scenario content key (epoch N is a different world),
    #: while ``None`` leaves legacy keys untouched.
    evolution: dict[str, Any] | None = None
    #: deterministic AS sampling ``{"rate": f, "seed": s}`` applied to
    #: the target list, or ``None`` for the full population.  The
    #: campaign supervisor sets this when a wall-clock deadline degrades
    #: late epochs to a subset instead of dying; recorded in provenance.
    asn_sample: dict[str, Any] | None = None
    scan: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.partition not in ("weighted", "modulo"):
            raise ValueError(
                f"unknown partition scheme {self.partition!r} "
                "(expected 'weighted' or 'modulo')"
            )
        if self.faults is not None:
            # Validate eagerly: a bad plan should fail at spec time,
            # not inside a worker process mid-scan.
            FaultPlan.from_payload(self.faults)
        if self.topology is not None:
            TopologySpec.from_payload(self.topology)
        if self.evolution is not None:
            from ..campaigns.evolution import validate_evolution_payload

            validate_evolution_payload(self.evolution)
        if self.asn_sample is not None:
            rate = self.asn_sample.get("rate")
            seed = self.asn_sample.get("seed")
            if not isinstance(rate, (int, float)) or not 0 < rate <= 1:
                raise ValueError(
                    f"asn_sample rate must be in (0, 1], got {rate!r}"
                )
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ValueError(
                    f"asn_sample seed must be an int, got {seed!r}"
                )

    @classmethod
    def from_scan_config(
        cls,
        *,
        seed: int,
        n_ases: int,
        shards: int,
        config: ScanConfig,
        partition: str = "weighted",
        metrics: bool = False,
        journal: bool = False,
        stream: bool = False,
        faults: dict[str, Any] | None = None,
        topology: dict[str, Any] | None = None,
        evolution: dict[str, Any] | None = None,
        asn_sample: dict[str, Any] | None = None,
    ) -> "CampaignSpec":
        return cls(
            seed=seed,
            n_ases=n_ases,
            shards=shards,
            partition=partition,
            metrics=metrics,
            journal=journal,
            stream=stream,
            faults=faults,
            topology=topology,
            evolution=evolution,
            asn_sample=asn_sample,
            scan=asdict(config),
        )

    def scan_config(self) -> ScanConfig:
        return ScanConfig(**self.scan)

    def scenario_params(self) -> ScenarioParams:
        """The scenario parameters this spec builds (one place, so the
        parent pipeline and shard workers can never diverge)."""
        from ..scenarios import ScenarioParams

        topology = (
            TopologySpec.from_payload(self.topology)
            if self.topology is not None
            else None
        )
        return ScenarioParams(
            seed=self.seed,
            n_ases=self.n_ases,
            topology=topology,
            evolution=self.evolution,
        )

    def fault_plan(self) -> FaultPlan | None:
        """The fault plan this spec injects, or ``None``."""
        if self.faults is None:
            return None
        return FaultPlan.from_payload(self.faults)

    def to_payload(self) -> dict[str, Any]:
        payload = {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "seed": self.seed,
            "n_ases": self.n_ases,
            "shards": self.shards,
            "partition": self.partition,
            "metrics": self.metrics,
            "journal": self.journal,
            "stream": self.stream,
            "scan": dict(self.scan),
        }
        if self.faults is not None:
            payload["faults"] = dict(self.faults)
        if self.topology is not None:
            payload["topology"] = dict(self.topology)
        if self.evolution is not None:
            payload["evolution"] = dict(self.evolution)
        if self.asn_sample is not None:
            payload["asn_sample"] = dict(self.asn_sample)
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "CampaignSpec":
        _check_version(payload, "campaign spec")
        return cls(
            seed=payload["seed"],
            n_ases=payload["n_ases"],
            shards=payload["shards"],
            # Manifests written before partition schemes existed were
            # produced by the modulo split; defaulting to it keeps their
            # reused shard artifacts consistent on resume.
            partition=payload.get("partition", "modulo"),
            metrics=payload.get("metrics", False),
            journal=payload.get("journal", False),
            stream=payload.get("stream", False),
            faults=payload.get("faults"),
            topology=payload.get("topology"),
            evolution=payload.get("evolution"),
            asn_sample=payload.get("asn_sample"),
            scan=dict(payload["scan"]),
        )


def _check_version(payload: dict[str, Any], what: str) -> None:
    version = payload.get("schema_version")
    if version != ARTIFACT_SCHEMA_VERSION:
        raise ValueError(
            f"{what} has schema_version={version!r}, "
            f"this code reads version {ARTIFACT_SCHEMA_VERSION}"
        )


class RunDirectory:
    """Artifact store for one pipeline run.

    Lays out ``manifest.json`` (the spec plus stage bookkeeping),
    ``shard-NNN.json`` per scan shard, ``observations.json``,
    ``results.json``, and ``report.txt`` under one directory.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    # -- paths -----------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.path / "manifest.json"

    def shard_path(self, shard_id: int) -> Path:
        return self.path / f"shard-{shard_id:03d}.json"

    @property
    def observations_path(self) -> Path:
        return self.path / "observations.json"

    @property
    def results_path(self) -> Path:
        return self.path / "results.json"

    @property
    def report_path(self) -> Path:
        return self.path / "report.txt"

    @property
    def telemetry_path(self) -> Path:
        return self.path / "telemetry.json"

    @property
    def events_path(self) -> Path:
        return self.path / "events.ndjson"

    def shard_events_path(self, shard_id: int) -> Path:
        return self.path / f"events-{shard_id:03d}.ndjson"

    def stream_path(self, shard_id: int) -> Path:
        """Per-shard live telemetry stream (``repro watch`` tails these)."""
        return self.path / f"telemetry-stream-{shard_id:03d}.ndjson"

    @property
    def faults_path(self) -> Path:
        return self.path / "faults.json"

    @property
    def scenario_path(self) -> Path:
        """The compiled-scenario artifact shared by non-fork workers."""
        return self.path / "scenario.bin"

    def profile_path(self, shard_id: int) -> Path:
        """cProfile stats dumped by shard workers under ``--profile``."""
        return self.path / f"profile-{shard_id:03d}.pstats"

    def heartbeat_path(self, shard_id: int) -> Path:
        return self.path / f"heartbeat-{shard_id:03d}.json"

    def crash_marker_glob(self, shard_id: int, clause_index: int):
        """Markers left by already-fired shard-crash clauses."""
        return self.path.glob(
            f"crash-{shard_id:03d}-c{clause_index}-*.marker"
        )

    def crash_marker_path(
        self, shard_id: int, clause_index: int, firing: int
    ) -> Path:
        return self.path / (
            f"crash-{shard_id:03d}-c{clause_index}-{firing}.marker"
        )

    # -- manifest --------------------------------------------------------

    def read_spec(self) -> CampaignSpec:
        """Load the spec recorded in the manifest (for ``--resume``)."""
        try:
            manifest = _read_json(self.manifest_path)
        except ValueError as exc:
            raise ArtifactCorruptError(
                f"{self.manifest_path} is not valid JSON ({exc}); the "
                "run directory cannot be trusted — delete it and rerun"
            ) from exc
        return CampaignSpec.from_payload(manifest["spec"])

    # -- checksum envelope ----------------------------------------------

    def record_artifact(self, path: Path) -> None:
        """Record *path*'s sha256 in the manifest.

        Read paths verify against this digest so a truncated or
        bit-flipped artifact is quarantined instead of silently merged
        into a resumed run.
        """
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        manifest = _read_json(self.manifest_path)
        manifest.setdefault("artifacts", {})[path.name] = digest
        _write_json(self.manifest_path, manifest)

    def recorded_digest(self, name: str) -> str | None:
        if not self.manifest_path.exists():
            return None
        return _read_json(self.manifest_path).get("artifacts", {}).get(name)

    def quarantine(self, path: Path) -> Path:
        """Move a corrupt artifact aside so resume regenerates it."""
        quarantined = path.with_name(path.name + ".quarantined")
        os.replace(path, quarantined)
        return quarantined

    def bind_spec(self, spec: CampaignSpec) -> None:
        """Record *spec* in the manifest, or verify it matches.

        A run directory belongs to exactly one spec; re-entering it with
        different parameters would silently mix artifacts from two
        different campaigns, so that is an error.
        """
        if self.manifest_path.exists():
            recorded = self.read_spec()
            if recorded != spec:
                raise ValueError(
                    f"run directory {self.path} was created for "
                    f"{recorded}, refusing to reuse it for {spec}"
                )
            return
        _write_json(
            self.manifest_path,
            {
                "schema_version": ARTIFACT_SCHEMA_VERSION,
                "spec": spec.to_payload(),
                "stages_completed": [],
            },
        )

    def mark_stage(self, stage: str) -> None:
        manifest = _read_json(self.manifest_path)
        completed = manifest.setdefault("stages_completed", [])
        if stage not in completed:
            completed.append(stage)
            _write_json(self.manifest_path, manifest)


def _read_json(path: Path) -> dict[str, Any]:
    return json.loads(path.read_text())


def _write_json(path: Path, payload: dict[str, Any]) -> None:
    # Write-then-rename so a crash mid-write never leaves a truncated
    # artifact that a later --resume would trust.
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    os.replace(tmp, path)


def _read_artifact(
    rd: RunDirectory | None,
    path: Path,
    what: str,
    *,
    parse_json: bool = True,
) -> Any:
    """Read an artifact, verifying its recorded checksum first.

    Artifacts written before checksums existed have no recorded digest
    and are read as before; anything recorded must match byte-for-byte
    or it is quarantined and the resume fails with a clear error.
    """
    raw = path.read_bytes()
    recorded = rd.recorded_digest(path.name) if rd is not None else None
    if recorded is not None:
        actual = hashlib.sha256(raw).hexdigest()
        if actual != recorded:
            quarantined = rd.quarantine(path)
            raise ArtifactCorruptError(
                f"{what} at {path} failed its checksum "
                f"(recorded {recorded[:12]}…, found {actual[:12]}…); "
                f"moved to {quarantined.name} — rerun with --resume to "
                "regenerate it"
            )
    if not parse_json:
        return raw
    try:
        return json.loads(raw)
    except ValueError as exc:
        if rd is not None:
            quarantined = rd.quarantine(path)
            raise ArtifactCorruptError(
                f"{what} at {path} is not valid JSON ({exc}); moved to "
                f"{quarantined.name} — rerun with --resume to "
                "regenerate it"
            ) from exc
        raise


# ---------------------------------------------------------------------------
# worker liveness and scripted crashes
# ---------------------------------------------------------------------------


class ShardHeartbeat:
    """Liveness file a scan worker refreshes as it sends probes.

    The parent reads ``heartbeat-NNN.json`` while the pool runs; a
    worker whose heartbeat goes stale past the hang timeout is killed
    and its shard re-executed like any other crash.
    """

    #: minimum wall-clock seconds between refreshes.
    interval = 2.0

    def __init__(self, path: Path) -> None:
        self.path = path
        self.probes = 0
        self._last_write = 0.0

    def start(self) -> None:
        self._write()

    # -- progress-reporter protocol (only probe_sent advances us) -------

    def add_planned(self, count: int) -> None:
        pass

    def penetration(self) -> None:
        pass

    def probe_sent(self) -> None:
        self.probes += 1
        if time.time() - self._last_write >= self.interval:
            self._write()

    def _write(self) -> None:
        self._last_write = time.time()
        _write_json(
            self.path,
            {
                "pid": os.getpid(),
                "time": self._last_write,
                "probes": self.probes,
            },
        )


class _ScanHooks:
    """Fan scanner progress callbacks out to several sinks.

    The scanner binds exactly one progress object; this lets the live
    reporter, the heartbeat, and the crash fuse all ride it.
    """

    def __init__(self, *sinks) -> None:
        self._sinks = [sink for sink in sinks if sink is not None]

    def add_planned(self, count: int) -> None:
        for sink in self._sinks:
            sink.add_planned(count)

    def probe_sent(self) -> None:
        for sink in self._sinks:
            sink.probe_sent()

    def penetration(self) -> None:
        for sink in self._sinks:
            sink.penetration()


class _CrashFuse:
    """Fires scripted shard-crash clauses as the scan progresses.

    Each firing drops a marker file into the run directory *before*
    dying, so the re-executed shard sees the clause as spent and runs
    to completion — exactly ``times`` crashes per clause, across any
    number of re-executions.
    """

    def __init__(
        self,
        clauses,  # [(clause_index, ShardCrash)] for this shard
        rd: RunDirectory,
        shard_id: int,
        in_worker: bool,
    ) -> None:
        self._rd = rd
        self._shard = shard_id
        self._in_worker = in_worker
        self._count = 0
        self._armed = []
        for index, clause in clauses:
            fired = len(list(rd.crash_marker_glob(shard_id, index)))
            if fired < clause.times:
                self._armed.append([index, clause, fired])

    def add_planned(self, count: int) -> None:
        pass

    def penetration(self) -> None:
        pass

    def probe_sent(self) -> None:
        self._count += 1
        for entry in self._armed:
            index, clause, fired = entry
            if fired < clause.times and self._count == clause.after_probes:
                entry[2] = fired + 1
                self._trigger(index, clause, fired)

    def _trigger(self, index, clause, firing: int) -> None:
        self._rd.crash_marker_path(self._shard, index, firing).write_text(
            f"pid={os.getpid()}\n"
        )
        # Inline shards run in the pipeline parent: killing or hanging
        # would take the whole run down, so every mode degrades to the
        # catchable exception there.
        if not self._in_worker or clause.mode == "raise":
            raise ShardCrashInjected(self._shard, index)
        if clause.mode == "hang":
            while True:  # parent's hang-timeout reaper SIGKILLs us
                time.sleep(60)
        os.kill(os.getpid(), signal.SIGKILL)


# ---------------------------------------------------------------------------
# scan stage (runs in worker processes)
# ---------------------------------------------------------------------------

#: the parent pipeline's live scenario, published just before shard
#: workers fork so they inherit it copy-on-write.  Only ever *used* in a
#: fork child (``_IN_FORK_CHILD``): the parent needs its copy pristine
#: for the analyze stage, and each child's scan mutations stay private
#: to that child's address space.
_SHARED_SCENARIO = None
#: serialized artifact of the same scenario, for workers that run in
#: this very process (inline shards) and therefore must deserialize a
#: private copy instead of touching the parent's object.
_SHARED_BLOB: bytes | None = None
#: content key both of the above were produced under.
_SHARED_KEY: str | None = None
#: set in the fork-pool child bootstrap, never in the parent.
_IN_FORK_CHILD = False


def _publish_scenario(scenario, blob: bytes | None, key: str) -> None:
    global _SHARED_SCENARIO, _SHARED_BLOB, _SHARED_KEY
    _SHARED_SCENARIO = scenario
    _SHARED_BLOB = blob
    _SHARED_KEY = key


def _retract_scenario() -> None:
    global _SHARED_SCENARIO, _SHARED_BLOB, _SHARED_KEY
    _SHARED_SCENARIO = None
    _SHARED_BLOB = None
    _SHARED_KEY = None


def _acquire_scenario(spec: CampaignSpec, payload: dict[str, Any]):
    """Obtain the shard's scenario: inherit, load, or (last) rebuild.

    Preference order and why:

    1. **fork-inherited** — zero cost: the parent built it once and the
       fork's copy-on-write pages carry it into the child.
    2. **in-process blob** — inline shards deserialize a private copy so
       their scan never mutates the parent's analyze-stage scenario.
    3. **run-directory artifact** — workers with no process lineage to
       the builder (spawn pools, a resumed run on another machine).
    4. **rebuild from spec** — always available, always identical; the
       other paths are purely faster routes to the same object graph.

    Returns ``(scenario, source, seconds)`` where *source* names the
    path taken (``inherited``/``blob``/``artifact``/``built``).
    """
    from ..scenarios import ScenarioParams, build_internet
    from ..scenarios.compiled import (
        ScenarioArtifactError,
        content_key,
        deserialize_scenario,
        load_scenario,
    )

    params = spec.scenario_params()
    key = content_key(params)
    start = time.perf_counter()
    if (
        _IN_FORK_CHILD
        and _SHARED_SCENARIO is not None
        and _SHARED_KEY == key
    ):
        return _SHARED_SCENARIO, "inherited", time.perf_counter() - start
    if _SHARED_BLOB is not None and _SHARED_KEY == key:
        scenario = deserialize_scenario(_SHARED_BLOB, expect_key=key)
        return scenario, "blob", time.perf_counter() - start
    run_dir = payload.get("run_dir")
    if run_dir is not None:
        artifact_path = RunDirectory(run_dir).scenario_path
        if artifact_path.exists():
            try:
                scenario = load_scenario(artifact_path, expect_key=key)
            except (ScenarioArtifactError, OSError):
                pass  # stale or torn artifact: fall through to rebuild
            else:
                return scenario, "artifact", time.perf_counter() - start
    scenario = build_internet(params)
    return scenario, "built", time.perf_counter() - start


def run_scan_shard(
    payload: dict[str, Any], progress=None
) -> dict[str, Any]:
    """Scan one shard of the target space; module-level for pickling.

    The worker acquires the synthetic Internet via
    :func:`_acquire_scenario` — fork-inherited from the parent when
    possible, loaded from the compiled artifact otherwise, rebuilt from
    the spec as a last resort; all three yield bit-identical worlds —
    then scans only its assigned targets (the explicit ``asns`` list in
    the job, or the legacy ``asn % shards`` split).  The campaign
    duration is pinned to the globally computed value so probes are
    paced exactly as in the unsharded run.

    ``progress`` (a live reporter, inline shards only — it does not
    survive pickling into a pool worker) receives per-probe callbacks.
    """
    spec = CampaignSpec.from_payload(payload["spec"])
    shard_id = payload["shard_id"]
    run_dir = payload.get("run_dir")
    rd = RunDirectory(run_dir) if run_dir is not None else None
    # Streaming needs a registry to diff for metrics.delta events, but
    # a SpanRecorder only when the spec asked for telemetry proper —
    # the shard artifact's "telemetry" key is gated on *both*, so a
    # stream-only run leaves artifacts and telemetry.json untouched.
    registry = (
        MetricsRegistry() if (spec.metrics or spec.stream) else None
    )
    recorder = SpanRecorder() if spec.metrics else None
    journal = None
    if spec.journal:
        from ..obs.journal import Journal

        if run_dir is None:
            raise ValueError("journaled scan shard requires a run directory")
        journal = Journal(
            shard_id=shard_id,
            path=Path(run_dir) / f"events-{shard_id:03d}.ndjson",
        )
    snapshotter = None
    if spec.stream:
        from ..obs.stream import TelemetrySnapshotter

        if rd is None:
            raise ValueError(
                "telemetry streaming requires a run directory"
            )
        snapshotter = TelemetrySnapshotter(
            rd.stream_path(shard_id),
            shard_id=shard_id,
            interval=payload.get("snapshot_interval", 1.0),
            registry=registry,
        )
    fault_plan = spec.fault_plan()
    heartbeat = None
    fuse = None
    if rd is not None:
        heartbeat = ShardHeartbeat(rd.heartbeat_path(shard_id))
        heartbeat.start()
    if fault_plan is not None:
        crash_clauses = fault_plan.crash_clauses(shard_id)
        if crash_clauses:
            if rd is None:
                raise ValueError(
                    "shard-crash fault clauses require a run directory "
                    "(crash markers track spent firings)"
                )
            fuse = _CrashFuse(
                crash_clauses, rd, shard_id,
                in_worker=bool(payload.get("in_worker")),
            )

    timings: dict[str, Any] = {}
    shard_asns = payload.get("asns")
    members = frozenset(shard_asns) if shard_asns is not None else None

    def _scan() -> tuple[Any, Any, float]:
        with span("scan.shard", shard=shard_id):
            with span("build"):
                scenario, source, acquire_wall = _acquire_scenario(
                    spec, payload
                )
                timings["scenario_source"] = source
                timings["acquire_seconds"] = acquire_wall
                full = scenario.target_set()
                shard_targets = TargetSet(
                    targets=[
                        t
                        for t in full.targets
                        if _sample_keeps(spec.asn_sample, t.asn)
                        and (
                            t.asn in members
                            if members is not None
                            else t.asn % spec.shards == shard_id
                        )
                    ],
                    stats=full.stats,
                )
                config = spec.scan_config()
                config.pinned_duration = payload["pinned_duration"]
                if "pinned_retry_budget" in payload:
                    config.pinned_retry_budget = payload[
                        "pinned_retry_budget"
                    ]
                scanner, collector = scenario.make_scanner(
                    config, targets=shard_targets
                )
                if fault_plan is not None:
                    injector = fault_plan.compile()
                    if injector is not None:
                        scenario.fabric.install_faults(injector)
                if registry is not None:
                    from ..obs.instrument import instrument_scenario

                    instrument_scenario(registry, scenario)
                    scanner.bind_metrics(registry)
                if journal is not None:
                    from ..obs.instrument import journal_scenario

                    journal_scenario(journal, scenario)
                    scanner.bind_journal(journal)
                if snapshotter is not None:
                    snapshotter.attach(scanner)
                if (
                    progress is not None
                    or heartbeat is not None
                    or fuse is not None
                    or snapshotter is not None
                ):
                    # The snapshotter rides before the crash fuse so the
                    # stream records a probe before a scripted crash
                    # fires on it.
                    scanner.bind_progress(
                        _ScanHooks(progress, heartbeat, snapshotter, fuse)
                    )
            with span("run") as run_span:
                scanner.run()
            if journal is not None:
                journal.flush()
            if registry is not None:
                from ..obs.instrument import harvest_scenario

                harvest_scenario(registry, scenario)
            if snapshotter is not None:
                # After the harvest, so the final metrics.delta carries
                # the end-of-run counters (cache hits, loop totals).
                snapshotter.close()
            return scanner, collector, run_span.wall if run_span else 0.0

    # Flush buffered observability tails when a worker is torn down
    # early: the hang reaper's SIGTERM, a pool shutdown, or a plain
    # process exit.  Only complete, already-serialized lines are
    # written, so a half-dead worker still leaves parseable files.
    flush_tail = None
    previous_sigterm = None
    if payload.get("in_worker") and (
        journal is not None or snapshotter is not None
    ):

        def flush_tail(signum=None, frame=None):
            try:
                if journal is not None:
                    journal.flush()
                if snapshotter is not None:
                    snapshotter.close(status="sigterm")
            finally:
                if signum is not None:
                    os._exit(128 + signum)

        try:
            previous_sigterm = signal.signal(signal.SIGTERM, flush_tail)
        except ValueError:
            previous_sigterm = None  # non-main thread: atexit only
        atexit.register(flush_tail)

    profiler = None
    if payload.get("profile") and rd is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        if recorder is not None:
            with activate(recorder):
                scanner, collector, wall = _scan()
            # Per-shard wall time legitimately differs run to run and
            # between shardings, hence deterministic=False.
            assert registry is not None
            registry.histogram(
                "scan_shard_wall_seconds",
                "wall-clock seconds each scan shard took",
                buckets=(1.0, 5.0, 15.0, 60.0, 300.0, 1800.0),
                deterministic=False,
            ).observe(wall)
        else:
            from time import perf_counter

            start = perf_counter()
            scanner, collector, run_wall = _scan()
            # Inline shards (workers=0) run under the parent pipeline's
            # span recorder, so the run span still measured the scan
            # proper; detached workers fall back to the outer clock.
            wall = run_wall if run_wall else perf_counter() - start
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(str(rd.profile_path(shard_id)))
        if flush_tail is not None:
            # Pool workers are reused across jobs: this job's handler
            # must not outlive it.
            atexit.unregister(flush_tail)
            if previous_sigterm is not None:
                try:
                    signal.signal(signal.SIGTERM, previous_sigterm)
                except ValueError:
                    pass
    timings["scan_seconds"] = wall
    metadata = ScanMetadata.from_scanner(scanner, wall_seconds=wall)
    if fault_plan is not None:
        metadata.fault_clauses = len(fault_plan.clauses)
    artifact = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "shard_id": shard_id,
        "shards": spec.shards,
        "spec": spec.to_payload(),
        "metadata": metadata.to_payload(),
        # Provenance, not identity: how the worker obtained its scenario
        # and how long each stage took.  Wall clocks differ run to run,
        # so nothing here may feed the merged results.
        "timings": timings,
        "collection": collector.to_payload(),
    }
    if registry is not None and recorder is not None:
        artifact["telemetry"] = {
            "metrics": registry.to_payload(),
            "spans": recorder.to_payload(),
        }
    return artifact


def _probe_census(
    scenario: "BuiltScenario", targets: TargetSet
) -> dict[int, int]:
    """Planned first-attempt probe count per target ASN.

    The spoof planner is per-target deterministic, so counting plans in
    the parent matches exactly what each worker will schedule.  The
    census drives three global-to-local decisions: the probe-weighted
    shard partition, the duration stretch under ``max_rate``, and the
    per-shard retry-budget split.  ASNs whose targets all lack a spoof
    plan still appear (with weight 0) — every target ASN must land in
    exactly one shard so merged metadata matches the unsharded run.
    """
    planner = scenario.make_planner()
    per_asn: dict[int, int] = {}
    for target in targets.targets:
        per_asn.setdefault(target.asn, 0)
        plan = planner.plan(target.address)
        if plan is not None:
            per_asn[target.asn] += len(plan.sources)
    return per_asn


def _partition_asns(
    per_asn: dict[int, int], shards: int, scheme: str
) -> list[list[int]]:
    """Assign every census ASN to exactly one shard.

    ``"modulo"`` reproduces the historical ``asn % shards`` split.
    ``"weighted"`` runs a longest-processing-time greedy fit over the
    probe census: heaviest ASN first, always onto the least-loaded
    shard.  Ties break on (ASN, shard index), so the assignment is a
    pure function of the census — any process that recomputes it (a
    resume, a retry round) derives the identical partition.
    """
    groups: list[list[int]] = [[] for _ in range(shards)]
    if scheme == "modulo":
        for asn in sorted(per_asn):
            groups[asn % shards].append(asn)
        return groups
    load: list[tuple[int, int]] = [(0, index) for index in range(shards)]
    heapq.heapify(load)
    for asn in sorted(per_asn, key=lambda a: (-per_asn[a], a)):
        weight, index = heapq.heappop(load)
        groups[index].append(asn)
        heapq.heappush(load, (weight + per_asn[asn], index))
    return [sorted(group) for group in groups]


def _split_budget(budget: int, weights: list[int]) -> list[int]:
    """Split a campaign retry budget across shards, by probe share.

    Largest-remainder apportionment: shares sum exactly to *budget*
    and the split is deterministic for a given census.
    """
    total = sum(weights)
    if total == 0:
        return [0] * len(weights)
    shares = []
    remainders = []
    for index, weight in enumerate(weights):
        exact = budget * weight / total
        base = int(exact)
        shares.append(base)
        remainders.append((-(exact - base), index))
    leftover = budget - sum(shares)
    for _, index in sorted(remainders)[:leftover]:
        shares[index] += 1
    return shares


def _sample_keeps(sample: dict[str, Any] | None, asn: int) -> bool:
    """Deterministic AS-sampling predicate (``spec.asn_sample``).

    Content-keyed on ``(sample seed, asn)`` so parent and every worker
    — and a crashed run's resume — select the identical subset.
    """
    if sample is None:
        return True
    return stable_fraction(
        int(sample["seed"]), "as-sample", int(asn)
    ) < float(sample["rate"])


def _sample_targets(
    sample: dict[str, Any] | None, targets: TargetSet
) -> TargetSet:
    if sample is None:
        return targets
    return TargetSet(
        targets=[
            t for t in targets.targets if _sample_keeps(sample, t.asn)
        ],
        stats=targets.stats,
    )


#: Version of the shard-cache entry envelope.
SHARD_CACHE_VERSION = 1


class ShardCache:
    """Content-keyed on-disk cache of completed scan-shard artifacts.

    The incremental-rescan store for longitudinal campaigns: a shard
    whose *inputs* — base scenario key, per-AS evolution state digests
    of its member ASes, fault plan, scan config, pinned pacing figures,
    sampling — are unchanged between epochs is served from here instead
    of re-executed.  Entries carry their own sha256 so a torn write or
    bit rot misses (and is evicted) rather than corrupting an epoch.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def entry_key(payload: dict[str, Any]) -> str:
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"shard-{key}.json"

    def load(self, key: str) -> dict[str, Any] | None:
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            envelope = json.loads(path.read_text())
        except ValueError:
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        body = envelope.get("body")
        canonical = json.dumps(
            body, sort_keys=True, separators=(",", ":")
        )
        if (
            envelope.get("schema_version") != SHARD_CACHE_VERSION
            or hashlib.sha256(canonical.encode()).hexdigest()
            != envelope.get("sha256")
        ):
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return body

    def store(self, key: str, body: dict[str, Any]) -> None:
        canonical = json.dumps(
            body, sort_keys=True, separators=(",", ":")
        )
        _write_json(
            self._path(key),
            {
                "schema_version": SHARD_CACHE_VERSION,
                "sha256": hashlib.sha256(canonical.encode()).hexdigest(),
                "body": body,
            },
        )


class _ShardCacheContext:
    """One run's view of the shard cache: key derivation + fetch/store.

    The key folds in everything that can change a shard artifact's
    *measurements*: the base scenario content key (evolution stripped),
    the plan digest, each member AS's epoch-state digest, the fault
    plan payload (fault-cycle clauses re-seed it per epoch), the scan
    config, the globally derived pinned duration / retry-budget share
    (cross-shard couplings), sampling, and the shard geometry.  Within
    a hit only the embedded spec payload can differ (the epoch index),
    so it is patched on fetch — the merged results are then
    byte-identical to a full re-execution, which the determinism suite
    asserts.
    """

    def __init__(
        self, cache: ShardCache, spec: CampaignSpec, params, scenario
    ) -> None:
        from ..scenarios.compiled import content_key

        self.cache = cache
        self.spec = spec
        self.base_key = content_key(replace(params, evolution=None))
        self.plan_digest = None
        self._digests: dict[int, int] = {}
        if spec.evolution is not None:
            from ..campaigns.evolution import (
                EvolutionPlan,
                epoch_as_digest,
            )

            plan = EvolutionPlan.from_payload(spec.evolution["plan"])
            epoch = spec.evolution["epoch"]
            self.plan_digest = plan.digest()
            graph = getattr(scenario, "topology", None)
            for target in scenario.target_set().targets:
                if target.asn in self._digests:
                    continue
                tier = (
                    graph.tier_of(target.asn)
                    if graph is not None
                    else 3
                )
                self._digests[target.asn] = epoch_as_digest(
                    plan, epoch, target.asn, tier
                )

    def key_for(
        self,
        shard_id: int,
        member_asns,
        pinned: float,
        budget_share: int | None,
    ) -> str:
        spec = self.spec
        return ShardCache.entry_key(
            {
                "v": SHARD_CACHE_VERSION,
                "artifact_schema": ARTIFACT_SCHEMA_VERSION,
                "base": self.base_key,
                "plan": self.plan_digest,
                "scan": dict(spec.scan),
                "journal": spec.journal,
                "metrics": spec.metrics,
                "faults": spec.faults,
                "sample": spec.asn_sample,
                "shards": spec.shards,
                "shard": shard_id,
                "pinned": pinned,
                "budget": budget_share,
                "asns": [
                    [asn, self._digests.get(asn, 0)]
                    for asn in sorted(member_asns)
                ],
            }
        )

    def fetch(self, key: str) -> dict[str, Any] | None:
        return self.cache.load(key)

    def store_artifact(
        self, key: str, artifact: dict[str, Any], events: str | None
    ) -> None:
        self.cache.store(key, {"artifact": artifact, "events": events})


#: Seconds a SIGTERMed hung worker gets to flush its observability
#: tail (journal, telemetry stream) before the reaper escalates to
#: SIGKILL.
_TERM_GRACE = 5.0


def _kill_if_hung(
    rd: RunDirectory,
    shard_id: int,
    hang_timeout: float,
    termed: dict[int, float],
) -> None:
    """Reap a worker whose heartbeat is older than *hang_timeout*.

    SIGTERM first — the worker's flush handler writes its buffered
    journal/stream tail and exits — then SIGKILL if it is still
    heartbeat-stale :data:`_TERM_GRACE` seconds later (wedged in
    uninterruptible state, or ignoring signals).  *termed* tracks
    first-signal times per shard for the current round.

    Stale heartbeat files from earlier attempts are deleted before a
    job is (re)submitted, so any file present here was written by the
    worker currently owning the shard.  The kill surfaces to the pool
    as a broken worker, and the normal crash-recovery path re-executes
    the shard.
    """
    hb_path = rd.heartbeat_path(shard_id)
    if not hb_path.exists():
        return  # job queued but not started yet
    try:
        hb = json.loads(hb_path.read_text())
    except ValueError:
        return  # mid-rename; next poll sees the full file
    if time.time() - hb.get("time", 0.0) < hang_timeout:
        return
    pid = hb.get("pid")
    if not pid or pid == os.getpid():
        return
    first_term = termed.get(shard_id)
    try:
        if first_term is None:
            termed[shard_id] = time.time()
            os.kill(pid, signal.SIGTERM)
        elif time.time() - first_term >= _TERM_GRACE:
            os.kill(pid, signal.SIGKILL)
    except OSError:
        pass


def _run_pool_round(
    jobs: list[dict[str, Any]],
    workers: int,
    rd: RunDirectory | None,
    progress,
    hang_timeout: float | None,
) -> tuple[list[dict[str, Any]], list[tuple[dict[str, Any], BaseException]]]:
    """One process-pool pass over *jobs*.

    Returns ``(completed artifacts, [(job, exception), ...])``.  A
    worker death (scripted SIGKILL, OOM kill, hang reaper) breaks the
    whole pool — completed futures keep their results, everything in
    flight fails — so the caller persists the survivors and re-submits
    only the failures in a fresh pool.
    """
    completed: list[dict[str, Any]] = []
    failed: list[tuple[dict[str, Any], BaseException]] = []
    termed: dict[int, float] = {}
    with ProcessPoolExecutor(
        max_workers=min(workers, len(jobs))
    ) as pool:
        futures = {pool.submit(run_scan_shard, job): job for job in jobs}
        not_done = set(futures)
        while not_done:
            # Poll (rather than block) so hung workers are noticed even
            # when no shard is completing.
            done, not_done = wait(
                not_done,
                timeout=_HANG_POLL if hang_timeout is not None else None,
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                job = futures[future]
                try:
                    completed.append(future.result())
                    if progress is not None:
                        progress.shard_done()
                except Exception as exc:
                    failed.append((job, exc))
            if not_done and hang_timeout is not None and rd is not None:
                for future in not_done:
                    _kill_if_hung(
                        rd, futures[future]["shard_id"], hang_timeout,
                        termed,
                    )
    return completed, failed


#: whether this platform can fork — the cheap path to scenario sharing.
_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


def _fork_shard_main(job: dict[str, Any], conn) -> None:
    """Entry point of one forked shard worker.

    Marks the process as a fork child (unlocking the inherited-scenario
    fast path in :func:`_acquire_scenario`), runs the shard, and ships
    the artifact — or the exception — back over the pipe.  Any death
    without a message (scripted SIGKILL, OOM, hang reaper) surfaces to
    the parent as EOF on the pipe.
    """
    global _IN_FORK_CHILD
    _IN_FORK_CHILD = True
    try:
        artifact = run_scan_shard(job)
    except BaseException as exc:  # noqa: BLE001 — relayed, not handled
        try:
            conn.send(("err", exc))
        except Exception:
            conn.send(("err", RuntimeError(repr(exc))))
        return
    conn.send(("ok", artifact))


def _run_fork_round(
    jobs: list[dict[str, Any]],
    workers: int,
    rd: RunDirectory | None,
    progress,
    hang_timeout: float | None,
) -> tuple[list[dict[str, Any]], list[tuple[dict[str, Any], BaseException]]]:
    """One fork-per-job pass over *jobs*.

    Each shard gets its own freshly forked process: the fork inherits
    the parent's built scenario copy-on-write (no rebuild, no pickle),
    and because the process serves exactly one job, its scan mutations
    die with it — a pool worker reused across jobs would hand the
    second job an already-mutated world.  Results return over a pipe;
    a worker that dies without sending one (scripted crash, OOM kill,
    hang reaper) is reported as failed, and the caller's retry rounds
    re-execute it.
    """
    ctx = multiprocessing.get_context("fork")
    completed: list[dict[str, Any]] = []
    failed: list[tuple[dict[str, Any], BaseException]] = []
    termed: dict[int, float] = {}
    pending = list(jobs)
    active: dict[Any, tuple[Any, dict[str, Any]]] = {}
    limit = max(1, min(workers, len(jobs)))

    def _launch() -> None:
        job = pending.pop(0)
        receiver, sender = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_fork_shard_main, args=(job, sender), daemon=True
        )
        process.start()
        sender.close()
        active[receiver] = (process, job)

    def _reap(process) -> None:
        process.join(timeout=10.0)
        if process.is_alive():
            process.kill()
            process.join()

    while pending and len(active) < limit:
        _launch()
    while active:
        ready = multiprocessing.connection.wait(
            list(active),
            timeout=_HANG_POLL if hang_timeout is not None else None,
        )
        for conn in ready:
            process, job = active.pop(conn)
            try:
                kind, value = conn.recv()
            except (EOFError, OSError):
                kind, value = "died", None
            conn.close()
            _reap(process)
            if kind == "ok":
                completed.append(value)
                if progress is not None:
                    progress.shard_done()
            elif kind == "err":
                failed.append((job, value))
            else:
                failed.append(
                    (
                        job,
                        RuntimeError(
                            f"shard {job['shard_id']} worker died "
                            f"without a result "
                            f"(exitcode {process.exitcode})"
                        ),
                    )
                )
            if pending:
                _launch()
        if not ready and hang_timeout is not None and rd is not None:
            for process, job in active.values():
                _kill_if_hung(rd, job["shard_id"], hang_timeout, termed)
    return completed, failed


# ---------------------------------------------------------------------------
# the pipeline driver
# ---------------------------------------------------------------------------


@dataclass
class PipelineOutcome:
    """What one pipeline invocation produced.

    ``campaign`` is ``None`` when the analyze stage was resumed from
    disk — the numbers and report are served from the artifacts without
    re-running anything.
    """

    campaign: Campaign | None
    results: dict[str, Any]
    report: str
    run_dir: Path | None
    stages_run: list[str]
    stages_skipped: list[str]
    #: full telemetry payload when the spec enabled metrics, else None.
    #: Lives beside the results (and in ``telemetry.json``), never
    #: inside them — results stay byte-identical with metrics on or off.
    telemetry: dict[str, Any] | None = None
    #: scan-stage execution counts ``{shard_id: executions}`` — a
    #: reused shard counts 0, a shard re-executed after one crash 2.
    #: ``None`` when the scan stage was served entirely from disk.
    scan_stats: dict[int, int] | None = None
    #: how the parent obtained its scenario: ``"built"`` (cold) or
    #: ``"cache"`` (content-keyed cache hit).  ``None`` when the run
    #: was served from disk without touching the builder.
    scenario_source: str | None = None
    #: scan shards served from the incremental-rescan shard cache this
    #: invocation (their executions count 0 in ``scan_stats``).
    cache_hits: tuple[int, ...] = ()


def run_pipeline(
    spec: CampaignSpec,
    *,
    run_dir=None,
    workers: int | None = None,
    progress=None,
    hang_timeout: float | None = None,
    scenario_cache=None,
    profile: bool = False,
    snapshot_interval: float = 1.0,
    ledger=None,
    shard_cache=None,
) -> PipelineOutcome:
    """Run the staged campaign described by *spec*.

    ``run_dir`` persists stage artifacts (and enables resume: stages
    whose artifacts already exist are skipped).  ``workers`` bounds the
    shard worker processes; ``0`` runs every shard inline in this
    process (useful under test, and what ``shards=1`` effectively is).
    ``progress`` is an optional live reporter (see
    :class:`repro.obs.progress.ProgressReporter`) fed by the scan stage.
    ``hang_timeout`` (seconds) arms the hung-worker reaper: a pool
    worker whose heartbeat goes stale that long is killed and its shard
    re-executed like any other crash.

    ``scenario_cache`` names a content-keyed scenario cache directory
    (or passes a :class:`~repro.scenarios.compiled.ScenarioCache`);
    ``None`` falls back to the ``REPRO_SCENARIO_CACHE`` environment
    variable, and no cache at all simply builds cold.  The cache is an
    execution detail, not campaign identity: hits and cold builds
    produce byte-identical artifacts.  ``profile`` makes every scan
    shard dump cProfile stats into the run directory.
    ``snapshot_interval`` (wall seconds) paces the telemetry stream
    when the spec enables it; like everything observational it never
    affects results.  ``ledger`` names a cross-run ledger directory:
    after the run completes its row is appended to (or refreshed in)
    ``<ledger>/ledger.json`` — observational only, results are
    byte-identical with or without it.  ``shard_cache`` names (or
    passes) a :class:`ShardCache` for incremental rescans: shards whose
    content-keyed inputs are unchanged since a previous epoch are
    served from the cache instead of re-executed, with merged results
    byte-identical to a full re-execution.
    """
    rd = RunDirectory(run_dir) if run_dir is not None else None
    if ledger is not None and rd is None:
        raise ValueError(
            "ledger requires a run directory (the ledger indexes run "
            "artifacts on disk)"
        )
    if spec.journal and rd is None:
        raise ValueError(
            "journal=True requires a run directory (events.ndjson needs "
            "somewhere to live)"
        )
    if spec.stream and rd is None:
        raise ValueError(
            "stream=True requires a run directory (the telemetry "
            "stream files need somewhere to live)"
        )
    if rd is not None:
        rd.bind_spec(spec)
        if spec.faults is not None:
            # The plan is part of the spec, but a standalone artifact
            # makes the chaos configuration of a run auditable without
            # digging through the manifest.
            _write_json(rd.faults_path, dict(spec.faults))
            rd.record_artifact(rd.faults_path)
    stages_run: list[str] = []
    stages_skipped: list[str] = []

    # Fully analyzed run on disk: serve it without rebuilding anything.
    if (
        rd is not None
        and rd.results_path.exists()
        and rd.report_path.exists()
    ):
        results = _read_artifact(rd, rd.results_path, "results artifact")
        report = _read_artifact(
            rd, rd.report_path, "report artifact", parse_json=False
        ).decode()
        telemetry = (
            _read_json(rd.telemetry_path)
            if rd.telemetry_path.exists()
            else None
        )
        _append_ledger(ledger, rd)
        return PipelineOutcome(
            campaign=None,
            results=results,
            report=report,
            run_dir=rd.path,
            stages_run=[],
            stages_skipped=list(STAGES),
            telemetry=telemetry,
        )

    # Span tracing is always on for the pipeline (its cost is a handful
    # of perf_counter calls per *stage*); the metrics registry exists
    # only when the spec asked for telemetry.
    recorder = SpanRecorder()
    registry = MetricsRegistry() if spec.metrics else None

    with activate(recorder), span("pipeline"):
        # -- build: the one and only scenario construction.  Workers
        # inherit this copy over fork (or load the artifact written
        # below); analyze reads it directly.
        from ..scenarios import ScenarioParams
        from ..scenarios.compiled import (
            ScenarioCache,
            build_or_load,
            content_key,
            serialize_scenario,
        )

        params = spec.scenario_params()
        if scenario_cache is None:
            cache = ScenarioCache.from_env()
        elif isinstance(scenario_cache, ScenarioCache):
            cache = scenario_cache
        else:
            cache = ScenarioCache(scenario_cache)
        with span("build"):
            scenario, blob, scenario_source = build_or_load(
                params, cache=cache
            )
            targets = _sample_targets(
                spec.asn_sample, scenario.target_set()
            )
            if rd is not None and spec.shards > 1:
                # Non-fork workers (and post-mortem debugging) load this
                # instead of rebuilding; serialized once, shared by all.
                if blob is None:
                    blob = serialize_scenario(scenario)
                from ..scenarios.compiled import write_artifact_bytes

                write_artifact_bytes(rd.scenario_path, blob)
        stages_run.append("build")

        # -- scan + collect, or reload the merged observations artifact.
        collector: Collector
        scan_stats: dict[int, int] | None = None
        cache_hits: list[int] = []
        shard_ctx = None
        if shard_cache is not None and rd is not None:
            if not isinstance(shard_cache, ShardCache):
                shard_cache = ShardCache(shard_cache)
            shard_ctx = _ShardCacheContext(
                shard_cache, spec, params, scenario
            )
        if rd is not None and rd.observations_path.exists():
            artifact = _read_artifact(
                rd, rd.observations_path, "observations artifact"
            )
            _check_version(artifact, "observations artifact")
            collector = _fresh_collector(scenario)
            collector.absorb_payload(artifact["collection"])
            collector.canonicalize()
            metadata = ScanMetadata.from_payload(artifact["metadata"])
            stages_skipped.extend(["scan", "collect"])
        else:
            with span("scan"):
                # Publish the built scenario for the duration of the
                # scan: forked workers inherit the object, inline
                # shards deserialize private copies from the blob.
                _publish_scenario(scenario, blob, content_key(params))
                try:
                    shard_payloads, scan_stats, cache_hits = (
                        _run_scan_stage(
                            spec, scenario, targets, rd, workers,
                            stages_run, stages_skipped, progress,
                            hang_timeout=hang_timeout, profile=profile,
                            snapshot_interval=snapshot_interval,
                            shard_ctx=shard_ctx,
                        )
                    )
                finally:
                    _retract_scenario()
                # Fold each shard's telemetry into the campaign-wide
                # view: metrics merge deterministically, span trees
                # graft under this scan span.
                for payload in shard_payloads:
                    shard_telemetry = payload.get("telemetry")
                    if shard_telemetry is None:
                        continue
                    if registry is not None:
                        registry.merge_payload(shard_telemetry["metrics"])
                    for node in shard_telemetry["spans"]["spans"]:
                        recorder.graft_payload(node)
            with span("collect"):
                collector = _fresh_collector(scenario)
                shard_metas = []
                for payload in shard_payloads:
                    collector.absorb_payload(payload["collection"])
                    shard_metas.append(
                        ScanMetadata.from_payload(payload["metadata"])
                    )
                collector.canonicalize()
                metadata = ScanMetadata.merged(shard_metas)
                if spec.journal and rd is not None:
                    from ..obs.journal import merge_shard_journals

                    merge_shard_journals(
                        [
                            rd.shard_events_path(shard_id)
                            for shard_id in range(spec.shards)
                        ],
                        rd.events_path,
                    )
                if rd is not None:
                    _write_json(
                        rd.observations_path,
                        {
                            "schema_version": ARTIFACT_SCHEMA_VERSION,
                            "spec": spec.to_payload(),
                            "metadata": metadata.to_payload(),
                            "collection": collector.to_payload(),
                        },
                    )
                    rd.record_artifact(rd.observations_path)
                    rd.mark_stage("collect")
            stages_run.append("collect")

        # -- analyze
        metadata.wall_seconds = recorder.elapsed()
        evolution_prov = None
        if spec.evolution is not None:
            from ..campaigns.evolution import EvolutionPlan, lineage_key

            plan = EvolutionPlan.from_payload(spec.evolution["plan"])
            base_key = content_key(replace(params, evolution=None))
            evolution_prov = {
                "plan_digest": plan.digest(),
                "epoch": spec.evolution["epoch"],
                "base_scenario_key": base_key,
                "lineage": lineage_key(base_key, plan),
            }
        with span("analyze"):
            campaign = Campaign(
                scenario,
                targets,
                None,
                collector,
                scan_wall_seconds=metadata.wall_seconds,
                metadata=metadata,
                faults=spec.faults,
                evolution=evolution_prov,
                sample=spec.asn_sample,
            )
            results = campaign.results_dict()
            if spec.journal and rd is not None and rd.events_path.exists():
                from ..obs.journal import append_classifications

                append_classifications(rd.events_path, collector)
        if rd is not None:
            _write_json(rd.results_path, results)
            rd.record_artifact(rd.results_path)
            rd.mark_stage("analyze")
        stages_run.append("analyze")

        # -- report
        with span("report"):
            report = campaign.full_report()
        if rd is not None:
            tmp = rd.report_path.with_suffix(".txt.tmp")
            tmp.write_text(report)
            os.replace(tmp, rd.report_path)
            rd.record_artifact(rd.report_path)
            rd.mark_stage("report")
        stages_run.append("report")

    telemetry = None
    if registry is not None:
        telemetry = telemetry_payload(
            registry, recorder, spec=spec.to_payload()
        )
        if rd is not None:
            write_telemetry(rd.telemetry_path, telemetry)

    _append_ledger(ledger, rd)

    return PipelineOutcome(
        campaign=campaign,
        results=results,
        report=report,
        run_dir=rd.path if rd is not None else None,
        stages_run=stages_run,
        stages_skipped=stages_skipped,
        telemetry=telemetry,
        scan_stats=scan_stats,
        scenario_source=scenario_source,
        cache_hits=tuple(cache_hits),
    )


def resume_pipeline(
    run_dir,
    *,
    workers: int | None = None,
    progress=None,
    hang_timeout: float | None = None,
    scenario_cache=None,
    profile: bool = False,
    snapshot_interval: float = 1.0,
    ledger=None,
    shard_cache=None,
) -> PipelineOutcome:
    """Resume the campaign recorded in *run_dir*'s manifest."""
    rd = RunDirectory(run_dir)
    if not rd.manifest_path.exists():
        raise FileNotFoundError(
            f"{rd.manifest_path} not found: not a pipeline run directory"
        )
    spec = rd.read_spec()
    return run_pipeline(
        spec,
        run_dir=run_dir,
        workers=workers,
        progress=progress,
        hang_timeout=hang_timeout,
        scenario_cache=scenario_cache,
        profile=profile,
        snapshot_interval=snapshot_interval,
        ledger=ledger,
        shard_cache=shard_cache,
    )


def _append_ledger(ledger, rd: RunDirectory | None) -> None:
    """Record a completed run in the cross-run ledger (if one is set)."""
    if ledger is None or rd is None:
        return
    from ..obs.ledger import Ledger

    Ledger(ledger).record(rd.path)


def _fresh_collector(scenario: "BuiltScenario") -> Collector:
    """An empty collector wired for merging shard payloads.

    The merged collector never ingests live query records, so it needs
    no probe index or channel terminators — only the pieces the
    analysis layer reads.
    """
    return Collector(
        codec=scenario.codec,
        probe_index={},
        real_addresses=frozenset(scenario.client.addresses),
        routes=scenario.routes,
    )


def _run_scan_stage(
    spec: CampaignSpec,
    scenario: "BuiltScenario",
    targets: TargetSet,
    rd: RunDirectory | None,
    workers: int | None,
    stages_run: list[str],
    stages_skipped: list[str],
    progress=None,
    hang_timeout: float | None = None,
    profile: bool = False,
    snapshot_interval: float = 1.0,
    shard_ctx: "_ShardCacheContext | None" = None,
) -> tuple[list[dict[str, Any]], dict[int, int], list[int]]:
    """Produce every shard artifact, reusing any already on disk.

    Returns ``(artifacts in shard order, {shard_id: executions},
    cache-hit shard ids)`` — a reused shard counts zero executions, a
    shard that survived one crash counts two.  Crashed or killed
    workers are re-executed up to :data:`MAX_SHARD_ATTEMPTS` times;
    only the failed shards re-run, every completed artifact is
    persisted the round it lands.

    With *shard_ctx* (incremental rescans), a shard absent from the run
    directory whose content key hits the cache is materialized from the
    cached artifact — spec payload patched to the current epoch — and
    then flows through the ordinary reuse path, executions 0.
    """
    config = spec.scan_config()
    pinned = config.duration
    budget_shares = None
    groups = None
    weighted = spec.partition == "weighted" and spec.shards > 1
    if (
        weighted
        or config.max_rate is not None
        or config.retry_budget is not None
    ):
        per_asn = _probe_census(scenario, targets)
        groups = _partition_asns(per_asn, spec.shards, spec.partition)
        per_shard = [
            sum(per_asn[asn] for asn in group) for group in groups
        ]
        total = sum(per_shard)
        if config.max_rate is not None and total:
            # Shards must pace probes on the full campaign's timeline,
            # but the duration/max_rate stretch in schedule_campaign is
            # computed from the local probe total — a shard would
            # stretch less.  Pin the global figure into every shard.
            pinned = max(config.duration, total / config.max_rate)
        if config.retry_budget is not None:
            budget_shares = _split_budget(config.retry_budget, per_shard)

    shard_keys: dict[int, str] = {}
    if shard_ctx is not None and rd is not None:
        members_of: dict[int, list[int]] = {}
        if weighted and groups is not None:
            members_of = {
                shard_id: groups[shard_id]
                for shard_id in range(spec.shards)
            }
        else:
            target_asns = sorted(
                {
                    t.asn
                    for t in targets.targets
                    if _sample_keeps(spec.asn_sample, t.asn)
                }
            )
            for shard_id in range(spec.shards):
                members_of[shard_id] = [
                    asn
                    for asn in target_asns
                    if asn % spec.shards == shard_id
                ]
        for shard_id in range(spec.shards):
            shard_keys[shard_id] = shard_ctx.key_for(
                shard_id,
                members_of[shard_id],
                pinned,
                None if budget_shares is None else budget_shares[shard_id],
            )

    payloads: dict[int, dict[str, Any]] = {}
    shard_attempts: dict[int, int] = {}
    cache_hits: list[int] = []
    pending: list[dict[str, Any]] = []
    for shard_id in range(spec.shards):
        reusable = rd is not None and rd.shard_path(shard_id).exists()
        if reusable and spec.journal:
            # A journaled shard is only complete once its events file
            # exists too; otherwise re-run to regenerate both.
            reusable = rd.shard_events_path(shard_id).exists()
        if not reusable and shard_id in shard_keys:
            body = shard_ctx.fetch(shard_keys[shard_id])
            if body is not None:
                # Materialize the cached shard into the run directory —
                # spec payload patched to this epoch's — so the normal
                # reuse path below (checksum recording included) serves
                # it exactly like a shard found on disk after a resume.
                artifact = dict(body["artifact"])
                artifact["spec"] = spec.to_payload()
                if spec.journal:
                    events = body.get("events")
                    if events is not None:
                        rd.shard_events_path(shard_id).write_text(events)
                _write_json(rd.shard_path(shard_id), artifact)
                rd.record_artifact(rd.shard_path(shard_id))
                cache_hits.append(shard_id)
                reusable = True
                if spec.journal:
                    reusable = rd.shard_events_path(shard_id).exists()
        if reusable:
            artifact = _read_artifact(
                rd, rd.shard_path(shard_id), f"shard {shard_id} artifact"
            )
            _check_version(artifact, f"shard {shard_id} artifact")
            payloads[shard_id] = artifact
            shard_attempts[shard_id] = 0
            stages_skipped.append(f"scan[{shard_id}]")
            if progress is not None:
                # Credit the reused shard's work to the totals without
                # letting it inflate the rate — on --resume, probes
                # served from disk took no wall time in this process.
                meta = ScanMetadata.from_payload(artifact["metadata"])
                progress.add_planned(meta.probes_scheduled)
                seed = getattr(progress, "seed_completed", None)
                if seed is not None:
                    seed(meta.probes_sent)
                progress.shard_done()
            continue
        job = {
            "spec": spec.to_payload(),
            "shard_id": shard_id,
            "pinned_duration": pinned,
        }
        if spec.stream:
            job["snapshot_interval"] = snapshot_interval
        if weighted and groups is not None:
            job["asns"] = groups[shard_id]
        if budget_shares is not None:
            job["pinned_retry_budget"] = budget_shares[shard_id]
        if profile:
            job["profile"] = True
        if rd is not None:
            job["run_dir"] = str(rd.path)
        shard_attempts[shard_id] = 0
        pending.append(job)

    if pending:
        if workers is None:
            workers = min(len(pending), os.cpu_count() or 1)
        inline = workers <= 0 or len(pending) == 1
        results: list[dict[str, Any]] = []
        remaining = pending
        while remaining:
            for job in remaining:
                shard_attempts[job["shard_id"]] += 1
                if rd is not None:
                    # Drop stale heartbeats so the hang reaper never
                    # acts on a file from a previous attempt.
                    rd.heartbeat_path(job["shard_id"]).unlink(
                        missing_ok=True
                    )
            failed: list[tuple[dict[str, Any], BaseException]]
            if inline:
                round_results, failed = [], []
                for job in remaining:
                    try:
                        if progress is not None:
                            round_results.append(
                                run_scan_shard(job, progress)
                            )
                            progress.shard_done()
                        else:
                            round_results.append(run_scan_shard(job))
                    except ShardCrashInjected as exc:
                        failed.append((job, exc))
            else:
                for job in remaining:
                    job["in_worker"] = True
                if _FORK_AVAILABLE:
                    round_results, failed = _run_fork_round(
                        remaining, workers, rd, progress, hang_timeout
                    )
                else:
                    round_results, failed = _run_pool_round(
                        remaining, workers, rd, progress, hang_timeout
                    )
            # Persist survivors immediately (in shard order, so stage
            # bookkeeping stays deterministic despite pool races) —
            # work completed before a crash is never redone.
            for artifact in sorted(
                round_results, key=lambda a: a["shard_id"]
            ):
                results.append(artifact)
                if rd is not None:
                    _write_json(
                        rd.shard_path(artifact["shard_id"]), artifact
                    )
                    rd.record_artifact(rd.shard_path(artifact["shard_id"]))
            if not failed:
                break
            retry_jobs: list[dict[str, Any]] = []
            exhausted: list[tuple[int, BaseException]] = []
            for job, exc in sorted(
                failed, key=lambda item: item[0]["shard_id"]
            ):
                shard_id = job["shard_id"]
                if shard_attempts[shard_id] >= MAX_SHARD_ATTEMPTS:
                    exhausted.append((shard_id, exc))
                else:
                    retry_jobs.append(job)
            if exhausted:
                detail = "; ".join(
                    f"shard {shard_id}: {exc!r}"
                    for shard_id, exc in exhausted
                )
                raise PartialScanError(
                    f"{len(exhausted)} scan shard(s) failed after "
                    f"{MAX_SHARD_ATTEMPTS} attempts ({detail}); "
                    "completed shard artifacts are persisted — fix the "
                    "cause and rerun with --resume",
                    [shard_id for shard_id, _ in exhausted],
                )
            remaining = retry_jobs
        for artifact in sorted(results, key=lambda a: a["shard_id"]):
            shard_id = artifact["shard_id"]
            payloads[shard_id] = artifact
            stages_run.append(f"scan[{shard_id}]")
            if shard_id in shard_keys:
                events = None
                if spec.journal and rd is not None:
                    events_path = rd.shard_events_path(shard_id)
                    if events_path.exists():
                        events = events_path.read_text()
                shard_ctx.store_artifact(
                    shard_keys[shard_id], artifact, events
                )
    if rd is not None:
        rd.mark_stage("scan")

    # Deterministic merge order regardless of which shards ran live.
    return (
        [payloads[shard_id] for shard_id in range(spec.shards)],
        shard_attempts,
        cache_hits,
    )
