"""Operator contact discovery for disclosure (Sections 5.2.1 and 6).

To notify the owners of vulnerable resolvers, the paper "performed a
reverse DNS (PTR) lookup of the IP address for each resolver and then
looked up the SOA record for the domain of the DNS name returned",
using the SOA RNAME field as the contact address.  This module performs
that exact pipeline inside the simulation: PTR lookup, walk up the
returned name until a zone apex answers with an SOA, convert RNAME to
a mailbox.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dns.message import Message, Rcode
from ..dns.name import Name
from ..dns.rr import PTR, SOA, RRType
from ..dns.stub import StubResolver
from ..netsim.addresses import Address
from ..netsim.fabric import Fabric


def rname_to_mailbox(rname: Name) -> str:
    """Convert an SOA RNAME to the mailbox it encodes.

    The first label is the local part; the rest is the domain
    (``hostmaster.example.org.`` -> ``hostmaster@example.org``).
    """
    if rname.is_root or len(rname) < 2:
        raise ValueError(f"RNAME too short: {rname}")
    local = rname.labels[0].decode("ascii")
    domain = ".".join(label.decode("ascii") for label in rname.labels[1:])
    return f"{local}@{domain}"


@dataclass(frozen=True, slots=True)
class OutreachContact:
    """Contact information discovered for one resolver address."""

    resolver: Address
    ptr_name: Name | None
    soa_domain: Name | None
    mailbox: str | None

    @property
    def contactable(self) -> bool:
        return self.mailbox is not None


class OutreachClient:
    """Drives PTR + SOA lookups against a DNS server on the fabric."""

    def __init__(
        self,
        fabric: Fabric,
        stub: StubResolver,
        server: Address,
        *,
        max_soa_walk: int = 6,
        attempts: int = 10,
    ) -> None:
        self.fabric = fabric
        self.stub = stub
        self.server = server
        self.max_soa_walk = max_soa_walk
        # Plain UDP lookups over a lossy path need retries.
        self.attempts = attempts

    def _query(self, qname: Name, qtype: int) -> Message | None:
        for _ in range(self.attempts):
            responses: list[Message | None] = []
            self.stub.query(self.server, qname, qtype, responses.append)
            self.fabric.run()
            if responses and responses[0] is not None:
                return responses[0]
        return None

    def lookup_contact(self, resolver: Address) -> OutreachContact:
        """Run the full PTR -> SOA -> RNAME pipeline for one address."""
        ptr_response = self._query(
            Name.from_text(resolver.reverse_pointer), RRType.PTR
        )
        ptr_name = None
        if ptr_response is not None and ptr_response.rcode is Rcode.NOERROR:
            for rr in ptr_response.answers:
                if rr.rrtype == RRType.PTR and isinstance(rr.rdata, PTR):
                    ptr_name = rr.rdata.target
                    break
        if ptr_name is None:
            return OutreachContact(resolver, None, None, None)

        # Walk up from the PTR name's parent looking for a zone apex.
        candidate = ptr_name.parent() if len(ptr_name) > 1 else ptr_name
        for _ in range(self.max_soa_walk):
            response = self._query(candidate, RRType.SOA)
            if response is not None and response.rcode is Rcode.NOERROR:
                for rr in response.answers:
                    if rr.rrtype == RRType.SOA and isinstance(rr.rdata, SOA):
                        try:
                            mailbox = rname_to_mailbox(rr.rdata.rname)
                        except ValueError:
                            mailbox = None
                        return OutreachContact(
                            resolver, ptr_name, candidate, mailbox
                        )
            if candidate.is_root or len(candidate) <= 1:
                break
            candidate = candidate.parent()
        return OutreachContact(resolver, ptr_name, None, None)

    def discover(self, resolvers: list[Address]) -> list[OutreachContact]:
        """Run the pipeline over a batch of vulnerable resolvers."""
        return [self.lookup_contact(address) for address in resolvers]


def contact_summary(contacts: list[OutreachContact]) -> str:
    """Render a disclosure work list."""
    contactable = [c for c in contacts if c.contactable]
    lines = [
        f"contact discovery: {len(contactable)}/{len(contacts)} resolvers "
        f"have a reachable SOA RNAME contact"
    ]
    for contact in contactable:
        lines.append(f"  {contact.resolver} -> {contact.mailbox}")
    return "\n".join(lines)
