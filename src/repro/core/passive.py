"""Passive measurement comparison (Section 5.2.2).

The paper cross-checked its active zero-source-port findings against the
2018 DITL collection: for each resolver that showed no port variance in
the active measurement, did its root-server traffic 18 months earlier
show variance?  The reproduction's stand-in for the 2018 DITL data is a
historical port trace produced by the scenario builder (each resolver's
*previous* allocator drives a burst of synthetic queries).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.addresses import Address
from .analysis import ResolverRange

#: Minimum historical observations needed for a fair comparison; the
#: paper required 10 unique-name queries (or same-port evidence).
MIN_HISTORY_SAMPLES = 10


@dataclass(frozen=True, slots=True)
class PassiveComparison:
    """Outcome counts for the zero-range population (Section 5.2.2)."""

    zero_range_resolvers: int
    stable_zero: int       # already had zero variance historically (51%)
    regressed: int         # had variance historically, none now (25%)
    insufficient: int      # not enough historical data (24%)

    @property
    def stable_fraction(self) -> float:
        return (
            self.stable_zero / self.zero_range_resolvers
            if self.zero_range_resolvers
            else 0.0
        )

    @property
    def regressed_fraction(self) -> float:
        return (
            self.regressed / self.zero_range_resolvers
            if self.zero_range_resolvers
            else 0.0
        )


def compare_zero_range(
    ranges: list[ResolverRange],
    history: dict[Address, list[int]],
    *,
    min_samples: int = MIN_HISTORY_SAMPLES,
) -> PassiveComparison:
    """Classify each zero-range resolver against its historical ports.

    ``history`` maps resolver addresses to the source ports observed in
    the historical (DITL-equivalent) trace.  A resolver with fewer than
    *min_samples* historical observations is *insufficient* unless its
    historical ports are all equal to its current fixed port — the
    paper's second inclusion criterion.
    """
    zero = [r for r in ranges if r.range == 0]
    stable = regressed = insufficient = 0
    for item in zero:
        current_port = item.range_observation.ports[0]
        ports = history.get(item.observation.target, [])
        if len(ports) < min_samples:
            if ports and all(p == current_port for p in ports):
                stable += 1
            else:
                insufficient += 1
            continue
        if max(ports) - min(ports) == 0:
            stable += 1
        else:
            regressed += 1
    return PassiveComparison(
        zero_range_resolvers=len(zero),
        stable_zero=stable,
        regressed=regressed,
        insufficient=insufficient,
    )
