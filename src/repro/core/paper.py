"""The paper's published numbers, and a measured-vs-paper comparator.

`PAPER` collects every quantitative claim the reproduction targets,
with its section.  :func:`comparison_report` evaluates a finished
campaign against each claim's *shape criterion* — a predicate over the
measured value, since absolute counts belong to the 2019 Internet —
and renders a verdict table.  This is `EXPERIMENTS.md` as executable
code.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .campaign import Campaign


@dataclass(frozen=True, slots=True)
class PaperClaim:
    """One quantitative claim from the paper."""

    key: str
    section: str
    paper_value: str
    description: str


#: Every claim the benchmark suite reproduces, keyed for lookup.
PAPER: dict[str, PaperClaim] = {
    claim.key: claim
    for claim in (
        PaperClaim(
            "asn_rate_v4", "§4", "49%",
            "fraction of tested IPv4 ASes lacking DSAV",
        ),
        PaperClaim(
            "asn_rate_v6", "§4", "50%",
            "fraction of tested IPv6 ASes lacking DSAV",
        ),
        PaperClaim(
            "other_gt_same_v4", "§4.1 Table 3", "78% > 63%",
            "other-prefix beats same-prefix for IPv4 addresses",
        ),
        PaperClaim(
            "same_asn_coverage_v4", "§4.1 Table 3", "91% of ASNs",
            "same-prefix reaches most reachable ASNs",
        ),
        PaperClaim(
            "ds_v6_gt_v4", "§4.1 Table 3", "70% vs 17%",
            "dst-as-src far more effective for IPv6 than IPv4",
        ),
        PaperClaim(
            "median_sources", "§4.1", "3 (v4) / 2 (v6)",
            "median number of working spoofed sources",
        ),
        PaperClaim(
            "closed_majority", "§5.1", "60%",
            "most reached resolvers are closed",
        ),
        PaperClaim(
            "closed_in_lacking_asns", "§5.1", "88%",
            "DSAV-lacking ASes hosting a reachable closed resolver",
        ),
        PaperClaim(
            "zero_range_exists", "§5.2.1", "3,810 resolvers",
            "a fixed-source-port population persists",
        ),
        PaperClaim(
            "port53_top", "§5.2.1", "34% use port 53",
            "port 53 is the most common fixed port",
        ),
        PaperClaim(
            "regressions_exist", "§5.2.2", "25% regressed",
            "some zero-range resolvers had variance 18 months earlier",
        ),
        PaperClaim(
            "full_gt_linux", "§5.3.2 Table 4", "178k > 89k",
            "full-range bucket outnumbers the Linux bucket",
        ),
        PaperClaim(
            "windows_bucket_open", "§5.3.2 Table 4", "89% open",
            "the Windows DNS bucket is predominantly open",
        ),
        PaperClaim(
            "v6_direct_gt_v4", "§5.4", "85% vs 53%",
            "IPv6 targets resolve directly more often than IPv4",
        ),
        PaperClaim(
            "loopback_rare", "§5.5", "107 of 568k",
            "loopback sources reach almost nothing",
        ),
    )
}


@dataclass(frozen=True, slots=True)
class ClaimVerdict:
    claim: PaperClaim
    measured: str
    holds: bool


def _evaluators() -> dict[str, Callable[["Campaign"], tuple[str, bool]]]:
    def asn_rate_v4(c):
        rate = c.results.headline.v4.asn_rate
        return f"{rate:.1%}", 0.3 < rate < 0.7

    def asn_rate_v6(c):
        rate = c.results.headline.v6.asn_rate
        return f"{rate:.1%}", 0.25 < rate < 0.75

    def other_gt_same_v4(c):
        rows = {r.category.value: r for r in c.results.source_categories.rows}
        total = max(c.results.source_categories.all_reachable_v4.addresses, 1)
        other = rows["other-prefix"].inclusive_v4.addresses / total
        same = rows["same-prefix"].inclusive_v4.addresses / total
        return f"{other:.0%} vs {same:.0%}", other > same

    def same_asn_coverage_v4(c):
        rows = {r.category.value: r for r in c.results.source_categories.rows}
        total = max(c.results.source_categories.all_reachable_v4.asns, 1)
        coverage = rows["same-prefix"].inclusive_v4.asns / total
        return f"{coverage:.0%}", coverage > 0.7

    def ds_v6_gt_v4(c):
        rows = {r.category.value: r for r in c.results.source_categories.rows}
        v4_total = max(c.results.source_categories.all_reachable_v4.addresses, 1)
        v6_total = max(c.results.source_categories.all_reachable_v6.addresses, 1)
        v4 = rows["dst-as-src"].inclusive_v4.addresses / v4_total
        v6 = rows["dst-as-src"].inclusive_v6.addresses / v6_total
        return f"{v6:.0%} vs {v4:.0%}", v6 > 2 * v4

    def median_sources(c):
        table = c.results.source_categories
        return (
            f"{table.median_sources_v4:.0f} / {table.median_sources_v6:.0f}",
            table.median_sources_v4 <= 6 and table.median_sources_v6 <= 4,
        )

    def closed_majority(c):
        fraction = c.results.open_closed.closed_fraction
        return f"{fraction:.0%}", fraction > 0.5

    def closed_in_lacking_asns(c):
        fraction = c.results.open_closed.asns_with_closed_fraction
        return f"{fraction:.0%}", fraction > 0.7

    def zero_range_exists(c):
        count = c.results.zero_range.resolvers
        return str(count), count > 0

    def port53_top(c):
        counts = c.results.zero_range.port_counts
        if not counts:
            return "none", False
        top = counts[0][0]
        return f"port {top}", top == 53

    def regressions_exist(c):
        count = c.results.passive.regressed
        return str(count), count > 0

    def full_gt_linux(c):
        from ..fingerprint.portrange import PortRangeClass

        by_bucket = {row.bucket: row for row in c.results.table4}
        full = by_bucket[PortRangeClass.FULL].total
        linux = by_bucket[PortRangeClass.LINUX].total
        return f"{full} vs {linux}", full > linux

    def windows_bucket_open(c):
        from ..fingerprint.portrange import PortRangeClass

        row = {r.bucket: r for r in c.results.table4}[PortRangeClass.WINDOWS]
        if not row.total:
            return "empty bucket", False
        fraction = row.open_ / row.total
        return f"{fraction:.0%}", fraction > 0.5

    def v6_direct_gt_v4(c):
        v4 = c.results.forwarding_v4.direct_fraction
        v6 = c.results.forwarding_v6.direct_fraction
        return f"{v6:.0%} vs {v4:.0%}", v6 > v4

    def loopback_rare(c):
        loopback = c.results.local_infiltration.loopback_targets
        ds = max(c.results.local_infiltration.dst_as_src_targets, 1)
        return f"{loopback} targets", loopback < ds / 3

    return {
        "asn_rate_v4": asn_rate_v4,
        "asn_rate_v6": asn_rate_v6,
        "other_gt_same_v4": other_gt_same_v4,
        "same_asn_coverage_v4": same_asn_coverage_v4,
        "ds_v6_gt_v4": ds_v6_gt_v4,
        "median_sources": median_sources,
        "closed_majority": closed_majority,
        "closed_in_lacking_asns": closed_in_lacking_asns,
        "zero_range_exists": zero_range_exists,
        "port53_top": port53_top,
        "regressions_exist": regressions_exist,
        "full_gt_linux": full_gt_linux,
        "windows_bucket_open": windows_bucket_open,
        "v6_direct_gt_v4": v6_direct_gt_v4,
        "loopback_rare": loopback_rare,
    }


def evaluate(campaign: "Campaign") -> list[ClaimVerdict]:
    """Evaluate every paper claim against *campaign*."""
    verdicts = []
    evaluators = _evaluators()
    for key, claim in PAPER.items():
        measured, holds = evaluators[key](campaign)
        verdicts.append(ClaimVerdict(claim, measured, holds))
    return verdicts


def comparison_report(campaign: "Campaign") -> str:
    """Render the measured-vs-paper verdict table."""
    verdicts = evaluate(campaign)
    width = max(len(v.claim.description) for v in verdicts)
    lines = [
        f"{'claim':<{width}}  {'section':<14} {'paper':<16} "
        f"{'measured':<14} verdict",
    ]
    for verdict in verdicts:
        lines.append(
            f"{verdict.claim.description:<{width}}  "
            f"{verdict.claim.section:<14} "
            f"{verdict.claim.paper_value:<16} "
            f"{verdict.measured:<14} "
            f"{'HOLDS' if verdict.holds else 'DIVERGES'}"
        )
    held = sum(1 for v in verdicts if v.holds)
    lines.append(f"\n{held}/{len(verdicts)} shape claims hold")
    return "\n".join(lines)
