"""Follow-up queries characterizing a reached resolver (Section 3.5).

When the first spoofed probe for a target is observed at the
authoritative servers, the engine sends — using the same spoofed source
that worked —

* 10 queries under the IPv4-only delegation and 10 under the IPv6-only
  delegation, whose recursive-to-authoritative legs reveal the ports the
  resolver allocates (the range statistic of Section 5.2) and whether it
  queries directly or through a forwarder (Section 5.4);
* one query under the truncation domain, forcing the resolver onto TCP
  so its SYN can be fingerprinted (Section 5.3.1); and
* one *non-spoofed* query from the client's real address — the open
  resolver test (Section 5.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..netsim.addresses import Address
from ..netsim.fabric import Fabric
from .qname import Channel, QueryNameCodec

if TYPE_CHECKING:
    from .scanner import ScanClient, ScanConfig


class FollowUpEngine:
    """Schedules the one-time follow-up battery for reached targets."""

    def __init__(
        self,
        fabric: Fabric,
        client: "ScanClient",
        codec: QueryNameCodec,
        *,
        config: "ScanConfig",
    ) -> None:
        self.fabric = fabric
        self.client = client
        self.codec = codec
        self.config = config
        self.launched: list[Address] = []

    def launch(self, target: Address, asn: int, working_source: Address) -> None:
        """Send the full follow-up battery toward *target*."""
        self.launched.append(target)
        delay = self.config.followup_spacing
        step = 0

        for channel in (Channel.V4_ONLY, Channel.V6_ONLY):
            for _ in range(self.config.followup_count):
                step += 1
                self.fabric.loop.schedule(
                    step * delay,
                    self._sender(channel, working_source, target, asn),
                )

        # TCP-eliciting queries (truncation domain).
        for _ in range(self.config.tcp_followup_count):
            step += 1
            self.fabric.loop.schedule(
                step * delay,
                self._sender(Channel.TCP, working_source, target, asn),
            )

        # Open-resolver test: genuine source, no spoofing.
        real = self.client.real_address(target.version)
        if real is not None:
            step += 1
            self.fabric.loop.schedule(
                step * delay,
                self._sender(Channel.MAIN, real, target, asn),
            )

    def _sender(
        self, channel: Channel, source: Address, target: Address, asn: int
    ):
        def send() -> None:
            qname = self.codec.encode(
                self.fabric.now, source, target, asn, channel=channel
            )
            self.client.send_query(
                qname, source, target, qtype=self.config.qtype
            )

        return send
