"""Recursive DNS resolver model.

This is the population the experiment probes: recursive servers that may
be *open* (answer anyone) or *closed* (answer only configured prefixes),
that resolve iteratively from root hints or *forward* to an upstream,
that may perform QNAME minimization (RFC 7816) with either strict or
relaxed handling of NXDOMAIN (RFC 8020 — the interaction that cost the
paper visibility, Section 3.6.4), that retransmit on timeout, fall back
to TCP on truncation, and draw their UDP source ports from whatever
allocator their OS/software combination provides (Section 5.2/5.3).

The implementation is an event-driven state machine over the fabric's
loop: client queries join a :class:`_ResolutionTask`; each task sends
upstream queries, follows referrals (with delegation caching), and
finally answers every waiting client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from ..netsim.addresses import Address, Network
from ..netsim.determinism import stable_hash
from ..netsim.events import ScheduledEvent
from ..netsim.packet import Packet, Transport
from ..oskernel.ports import PortAllocator
from ..oskernel.profiles import OSProfile
from .cache import Cache, NullCache
from .message import Flag, Message, Rcode
from .name import ROOT, Name
from .rr import RR, RRType
from .transport import DNSHost, Responder


class AccessControl:
    """Source-address policy: who may use this resolver.

    ``open_`` resolvers answer anyone (RFC 5358 discourages this but 40%
    of the resolvers the paper reached were open).  Closed resolvers
    answer only sources inside ``allowed_prefixes`` — which is exactly
    the check a spoofed internal source defeats.
    """

    def __init__(
        self,
        *,
        open_: bool = False,
        allowed_prefixes: tuple[Network, ...] = (),
        denied_prefixes: tuple[Network, ...] = (),
        allow_loopback: bool = True,
    ) -> None:
        self.open_ = open_
        self.allowed_prefixes = tuple(allowed_prefixes)
        # Deny wins over allow, as in BIND address-match lists: a server
        # farm often serves every corporate subnet *except* its own.
        self.denied_prefixes = tuple(denied_prefixes)
        # Stock configurations almost always admit localhost
        # (BIND's implicit ``allow-query { localnets; localhost; }``),
        # which is how the paper's loopback-source queries were answered
        # by otherwise closed resolvers (Section 5.5).
        self.allow_loopback = allow_loopback

    def allows(self, address: Address) -> bool:
        """Return whether a query sourced from *address* is served."""
        if self.allow_loopback and address.is_loopback:
            return True
        if any(
            address.version == prefix.version and address in prefix
            for prefix in self.denied_prefixes
        ):
            return False
        if self.open_:
            return True
        return any(
            address.version == prefix.version and address in prefix
            for prefix in self.allowed_prefixes
        )

    def __repr__(self) -> str:
        if self.open_:
            return "AccessControl(open)"
        return f"AccessControl(closed, {len(self.allowed_prefixes)} prefixes)"


@dataclass
class ResolverConfig:
    """Tunable behaviour of a recursive resolver."""

    qname_minimization: str | None = None      # None | "strict" | "relaxed"
    forwarder: Address | None = None
    upstream_timeout: float = 1.5
    max_retransmits: int = 1
    max_upstream_queries: int = 40
    max_cname_depth: int = 8
    negative_ttl: int = 60
    edns: bool = True
    #: how many glueless NS targets a referral may fan out to.  Large
    #: values reproduce the pre-NXNS behaviour the paper cites as a
    #: danger for newly exposed internal resolvers; NXNS-patched
    #: implementations clamp this hard.
    max_glueless_ns: int = 10
    #: how deep glueless NS chasing may recurse.
    max_glueless_depth: int = 3
    #: overall wall-clock budget for one resolution; SERVFAIL after.
    task_deadline: float = 12.0
    #: DNS 0x20: randomize the case of upstream query names and require
    #: responses to echo it exactly, multiplying the off-path forgery
    #: search space by 2^(letters in the name).
    use_0x20: bool = False
    #: DNS cookies (RFC 7873): attach a per-server client cookie to
    #: upstream queries; once a server is known to support cookies,
    #: responses lacking the correct echo are treated as forgeries.
    use_cookies: bool = False
    #: stateless ("anycast frontend") operation: no cache survives
    #: between resolutions, and upstream source ports / message IDs are
    #: derived from the query content instead of consumed RNG or
    #: allocator streams.  Every resolution is then a pure function of
    #: its own query, independent of whatever other traffic the server
    #: handled first — which is what lets sharded campaign runs share
    #: one public DNS service and still merge byte-identically.
    stateless: bool = False

    def __post_init__(self) -> None:
        if self.qname_minimization not in (None, "strict", "relaxed"):
            raise ValueError(
                f"bad qname_minimization: {self.qname_minimization!r}"
            )


@dataclass
class _Waiter:
    """One client query waiting on a resolution task."""

    query: Message
    respond: Responder


@dataclass
class _ResolutionTask:
    """State for resolving one (qname, qtype)."""

    qname: Name
    qtype: int
    key: tuple[Name, int] | None = None
    waiters: list[_Waiter] = field(default_factory=list)
    cut: Name = ROOT
    servers: list[Address] = field(default_factory=list)
    server_index: int = 0
    asked_qname: Name | None = None
    qmin_active: bool = False
    queries_sent: int = 0
    cname_depth: int = 0
    depth: int = 0
    done: bool = False
    #: simulated time when the task started, for the duration histogram.
    started_sim: float = 0.0
    #: callbacks of internal (glueless NS) consumers: (rcode, answers).
    internal_callbacks: list = field(default_factory=list)
    #: outstanding sub-resolutions while chasing glueless NS targets.
    glueless_outstanding: int = 0
    glueless_ns_rrset: list[RR] = field(default_factory=list)
    deadline_event: ScheduledEvent | None = None


@dataclass
class _PendingQuery:
    """One in-flight upstream query awaiting response or timeout."""

    task: _ResolutionTask
    server: Address
    sport: int
    msg_id: int
    qname: Name
    qtype: int
    transport: Transport
    timeout_event: ScheduledEvent | None = None
    retransmits_left: int = 0
    #: exact label octets sent when 0x20 is active, for echo validation.
    encoded_labels: tuple[bytes, ...] | None = None
    #: client cookie attached to the query, for echo validation.
    client_cookie: bytes | None = None


class RecursiveResolver(DNSHost):
    """A recursive DNS server attached to the simulated Internet."""

    def __init__(
        self,
        name: str,
        asn: int,
        os_profile: OSProfile,
        rng: Random,
        *,
        port_allocator: PortAllocator,
        acl: AccessControl,
        config: ResolverConfig | None = None,
        root_hints: list[Address] | None = None,
        software: str = "unknown",
    ) -> None:
        super().__init__(name, asn, os_profile, rng)
        self.port_allocator = port_allocator
        self.acl = acl
        self.config = config or ResolverConfig()
        self.root_hints = list(root_hints or [])
        self.software = software
        self.cache: Cache | NullCache | None = None  # bound on first use
        self._tasks: dict[tuple[Name, int], _ResolutionTask] = {}
        self._outstanding: dict[tuple[Address, int, int], _PendingQuery] = {}
        # DNS-cookie state (RFC 7873).
        self._client_cookies: dict[Address, bytes] = {}
        self._server_cookies: dict[Address, bytes] = {}
        self._cookie_servers: set[Address] = set()
        self.stats = {
            "client_queries": 0,
            "refused": 0,
            "cache_answers": 0,
            "upstream_queries": 0,
            "servfail": 0,
            "tcp_fallbacks": 0,
            "glueless_chases": 0,
        }
        #: optional resolution-duration histogram (see ``bind_metrics``).
        self._mx_task_sim = None
        #: optional event journal, duck-typed like the histogram above.
        self._journal = None

    def bind_metrics(self, registry) -> None:
        """Record per-resolution simulated durations into *registry*.

        Resolution spans are asynchronous (a task interleaves with all
        other traffic on the event loop), so wall-clock spans would
        measure scheduler luck; simulated time is the meaningful — and
        deterministic — duration of a recursion.
        """
        self._mx_task_sim = registry.histogram(
            "resolver_task_sim_seconds",
            "simulated seconds from client query to final response",
            buckets=(0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
        )

    def bind_journal(self, journal) -> None:
        """Record recursion/upstream/response events into *journal*."""
        self._journal = journal

    # -- lifecycle ---------------------------------------------------------

    def _ensure_cache(self) -> Cache:
        if self.cache is None:
            if self.config.stateless:
                self.cache = NullCache()
            else:
                if self.fabric is None:
                    raise RuntimeError("resolver not attached to a fabric")
                self.cache = Cache(clock=lambda: self.fabric.now)
        return self.cache

    @property
    def is_forwarder(self) -> bool:
        """True when this resolver forwards to an upstream resolver."""
        return self.config.forwarder is not None

    # -- client side ---------------------------------------------------------

    def handle_dns(
        self,
        message: Message,
        packet: Packet,
        transport: Transport,
        respond: Responder,
    ) -> None:
        if message.question is None or message.opcode is not message.opcode.QUERY:
            return
        self.stats["client_queries"] += 1
        if not self.acl.allows(packet.src):
            self.stats["refused"] += 1
            response = message.make_response()
            response.rcode = Rcode.REFUSED
            respond(response)
            return
        if not message.flags & Flag.RD:
            # We model recursive-only servers; iterative queries refused.
            response = message.make_response()
            response.rcode = Rcode.REFUSED
            respond(response)
            return

        question = message.question
        cache = self._ensure_cache()

        cached = cache.get(question.qname, question.qtype)
        if cached is not None:
            self.stats["cache_answers"] += 1
            response = message.make_response()
            response.flags |= Flag.RA
            response.rcode = cached.rcode
            response.answers.extend(cached.rrset)
            respond(response)
            return
        covering = cache.covering_nxdomain(question.qname)
        if covering is not None:
            self.stats["cache_answers"] += 1
            response = message.make_response()
            response.flags |= Flag.RA
            response.rcode = Rcode.NXDOMAIN
            respond(response)
            return

        key = (question.qname, question.qtype)
        task = self._tasks.get(key)
        if task is not None and not task.done:
            task.waiters.append(_Waiter(message, respond))
            return
        task = _ResolutionTask(question.qname, question.qtype, key=key)
        task.waiters.append(_Waiter(message, respond))
        self._tasks[key] = task
        self._start(task)

    # -- task driving ------------------------------------------------------

    def _start(self, task: _ResolutionTask) -> None:
        # Arm an overall deadline so no pathology (glueless loops, lame
        # delegations, lost packets) can leave clients unanswered.
        assert self.fabric is not None
        task.started_sim = self.fabric.now
        task.deadline_event = self.fabric.loop.schedule(
            self.config.task_deadline, lambda: self._finish_servfail(task)
        )
        jr = self._journal
        if jr is not None:
            jr.recursion(
                self.fabric.now,
                jr.probe_for(task.qname),
                self.name,
                self.asn,
                jr.name(task.qname),
                task.qtype,
                (
                    None
                    if self.config.forwarder is None
                    else jr.addr(self.config.forwarder)
                ),
            )
        if self.is_forwarder:
            assert self.config.forwarder is not None
            task.servers = [self.config.forwarder]
            task.cut = ROOT
            self._send_upstream(
                task,
                self.config.forwarder,
                task.qname,
                task.qtype,
                recursion_desired=True,
            )
            return
        task.qmin_active = (
            self.config.qname_minimization is not None and task.depth == 0
        )
        cut, servers = self._deepest_cached_cut(task.qname)
        task.cut = cut
        task.servers = servers
        task.server_index = 0
        self._advance(task)

    def _deepest_cached_cut(self, qname: Name) -> tuple[Name, list[Address]]:
        """Find the deepest cached delegation covering *qname*."""
        cache = self._ensure_cache()
        for ancestor in qname.ancestors():
            entry = cache.get(ancestor, RRType.NS)
            if entry is None or entry.is_negative:
                continue
            addresses = self._addresses_for_ns(entry.rrset)
            if addresses:
                return ancestor, addresses
        return ROOT, [a for a in self.root_hints if self._usable_family(a)]

    def _addresses_for_ns(self, ns_rrset: list[RR]) -> list[Address]:
        cache = self._ensure_cache()
        addresses: list[Address] = []
        for ns_rr in ns_rrset:
            target = ns_rr.rdata.target  # type: ignore[union-attr]
            for rrtype in (RRType.A, RRType.AAAA):
                entry = cache.get(target, rrtype)
                if entry and not entry.is_negative:
                    for rr in entry.rrset:
                        address = rr.rdata.address  # type: ignore[union-attr]
                        if self._usable_family(address):
                            addresses.append(address)
        return addresses

    def _usable_family(self, address: Address) -> bool:
        return any(a.version == address.version for a in self.addresses)

    def _source_for(self, server: Address) -> Address | None:
        for address in self.addresses:
            if address.version == server.version:
                return address
        return None

    def _upstream_ids(
        self,
        task: _ResolutionTask,
        server: Address,
        qname: Name,
        qtype: int,
        *,
        transport: Transport = Transport.UDP,
    ) -> tuple[int, int]:
        """Pick the (sport, msg_id) for one upstream query.

        Stateful resolvers draw from their port allocator and RNG —
        faithfully order-dependent, which is the very behaviour the
        paper measures.  Stateless resolvers derive both from the query
        content (with the task's send counter separating retransmits),
        so the values never depend on unrelated interleaved traffic.
        """
        if not self.config.stateless:
            if transport is Transport.TCP:
                return 0, self.rng.randrange(0x10000)
            return self.port_allocator.next_port(), self.rng.randrange(0x10000)
        key = stable_hash(
            "upstream-ids",
            self.name,
            transport.value,
            int(server),
            qname.to_wire(),
            qtype,
            task.queries_sent,
        )
        # Linux-shaped ephemeral range; the public service models a
        # modern, well-randomized stack.
        sport = 32768 + key % 28232
        msg_id = (key >> 32) & 0xFFFF
        return sport, msg_id

    def _next_ask(self, task: _ResolutionTask) -> tuple[Name, int]:
        """Return the (qname, qtype) to send next, honouring QNAME min."""
        if not task.qmin_active:
            return task.qname, task.qtype
        remaining = task.qname.relativize(task.cut)
        if len(remaining) <= 1:
            return task.qname, task.qtype
        # Ask for one more label than the current cut, type NS (RFC 7816).
        next_name = task.cut.child(remaining[-1])
        return next_name, RRType.NS

    def _advance(self, task: _ResolutionTask) -> None:
        if task.done:
            return
        if task.queries_sent >= self.config.max_upstream_queries:
            self._finish_servfail(task)
            return
        while task.server_index < len(task.servers):
            server = task.servers[task.server_index]
            if self._source_for(server) is not None:
                qname, qtype = self._next_ask(task)
                self._send_upstream(task, server, qname, qtype)
                return
            task.server_index += 1
        self._finish_servfail(task)

    def _send_upstream(
        self,
        task: _ResolutionTask,
        server: Address,
        qname: Name,
        qtype: int,
        *,
        recursion_desired: bool = False,
    ) -> None:
        source = self._source_for(server)
        if source is None:
            self._finish_servfail(task)
            return
        sport, msg_id = self._upstream_ids(task, server, qname, qtype)
        wire_qname, encoded_labels = self._encode_qname(qname)
        query = Message.make_query(
            msg_id,
            wire_qname,
            qtype,
            recursion_desired=recursion_desired,
            edns=self.config.edns,
        )
        client_cookie = self._attach_cookie(query, server)
        pending = _PendingQuery(
            task=task,
            server=server,
            sport=sport,
            msg_id=msg_id,
            qname=qname,
            qtype=qtype,
            transport=Transport.UDP,
            retransmits_left=self.config.max_retransmits,
            encoded_labels=encoded_labels,
            client_cookie=client_cookie,
        )
        task.asked_qname = qname
        task.queries_sent += 1
        self.stats["upstream_queries"] += 1
        jr = self._journal
        if jr is not None:
            # Identity keys off the task's original qname: a minimized
            # ancestor query still belongs to the probe that started it.
            jr.upstream(
                self.fabric.now,
                jr.probe_for(task.qname),
                self.name,
                jr.addr(server),
                jr.name(qname),
                qtype,
                sport,
                msg_id,
            )
        self._outstanding[(server, sport, msg_id)] = pending
        self.send_udp_query(query, source, server, sport)
        assert self.fabric is not None
        pending.timeout_event = self.fabric.loop.schedule(
            self.config.upstream_timeout, lambda: self._on_timeout(pending)
        )

    def _attach_cookie(self, query: Message, server: Address) -> bytes | None:
        """Attach the RFC 7873 COOKIE option; return the client cookie."""
        if not self.config.use_cookies or not self.config.edns:
            return None
        from .message import EDNS_COOKIE

        client_cookie = self._client_cookies.get(server)
        if client_cookie is None:
            client_cookie = bytes(
                self.rng.randrange(256) for _ in range(8)
            )
            self._client_cookies[server] = client_cookie
        payload = client_cookie + self._server_cookies.get(server, b"")
        query.set_edns_option(EDNS_COOKIE, payload)
        return client_cookie

    def _cookie_valid(
        self, pending: _PendingQuery, message: Message
    ) -> bool:
        """RFC 7873 response validation.

        A response carrying a cookie must echo the client cookie we
        sent; once a server has demonstrated cookie support, responses
        without one are treated as off-path forgeries (downgrade
        protection).
        """
        if pending.client_cookie is None:
            return True
        from .message import EDNS_COOKIE

        echoed = message.edns_option(EDNS_COOKIE)
        if echoed is None:
            return pending.server not in self._cookie_servers
        if echoed[:8] != pending.client_cookie:
            return False
        self._cookie_servers.add(pending.server)
        if len(echoed) > 8:
            self._server_cookies[pending.server] = echoed[8:]
        return True

    def _encode_qname(
        self, qname: Name
    ) -> tuple[Name, tuple[bytes, ...] | None]:
        """Apply 0x20 case randomization if configured."""
        if not self.config.use_0x20:
            return qname, None
        labels = tuple(
            bytes(
                (octet ^ 0x20)
                if 65 <= (octet & ~0x20) <= 90 and self.rng.random() < 0.5
                else octet
                for octet in label
            )
            for label in qname.labels
        )
        randomized = Name(labels)
        return randomized, labels

    def _on_timeout(self, pending: _PendingQuery) -> None:
        self._outstanding.pop(
            (pending.server, pending.sport, pending.msg_id), None
        )
        task = pending.task
        if task.done:
            return
        if pending.retransmits_left > 0:
            # Retransmit with a fresh port and ID, as real resolvers do.
            retransmits = pending.retransmits_left - 1
            source = self._source_for(pending.server)
            if source is not None:
                sport, msg_id = self._upstream_ids(
                    task, pending.server, pending.qname, pending.qtype
                )
                wire_qname, encoded_labels = self._encode_qname(pending.qname)
                query = Message.make_query(
                    msg_id, wire_qname, pending.qtype,
                    recursion_desired=self.is_forwarder,
                    edns=self.config.edns,
                )
                client_cookie = self._attach_cookie(query, pending.server)
                fresh = _PendingQuery(
                    task=task,
                    server=pending.server,
                    sport=sport,
                    msg_id=msg_id,
                    qname=pending.qname,
                    qtype=pending.qtype,
                    transport=Transport.UDP,
                    retransmits_left=retransmits,
                    encoded_labels=encoded_labels,
                    client_cookie=client_cookie,
                )
                task.queries_sent += 1
                self.stats["upstream_queries"] += 1
                self._outstanding[(pending.server, sport, msg_id)] = fresh
                self.send_udp_query(query, source, pending.server, sport)
                assert self.fabric is not None
                fresh.timeout_event = self.fabric.loop.schedule(
                    self.config.upstream_timeout,
                    lambda: self._on_timeout(fresh),
                )
                return
        task.server_index += 1
        self._advance(task)

    # -- upstream responses --------------------------------------------------

    def handle_dns_response(self, message: Message, packet: Packet) -> None:
        key = (packet.src, packet.dport, message.msg_id)
        pending = self._outstanding.get(key)
        if pending is None:
            return  # unsolicited or mis-guessed forgery
        if (
            message.question is None
            or message.question.qname != pending.qname
            or message.question.qtype != pending.qtype
        ):
            return  # question mismatch: reject
        if (
            pending.encoded_labels is not None
            and message.question.qname.labels != pending.encoded_labels
        ):
            return  # 0x20 case echo mismatch: off-path forgery
        if not self._cookie_valid(pending, message):
            return  # cookie echo missing or wrong: off-path forgery
        del self._outstanding[key]
        if pending.timeout_event is not None:
            assert self.fabric is not None
            self.fabric.loop.cancel(pending.timeout_event)
        self._handle_upstream(pending, message)

    def _handle_upstream(
        self, pending: _PendingQuery, message: Message
    ) -> None:
        task = pending.task
        if task.done:
            return
        if message.is_truncated and pending.transport is Transport.UDP:
            self._retry_over_tcp(pending)
            return
        if self.is_forwarder:
            self._finish_forwarded(task, message)
            return
        if message.rcode is Rcode.NXDOMAIN:
            self._handle_nxdomain(task, pending, message)
            return
        if message.rcode is not Rcode.NOERROR:
            task.server_index += 1
            self._advance(task)
            return

        answer_rrset = [
            rr
            for rr in message.answers
            if rr.name == pending.qname and rr.rrtype == pending.qtype
        ]
        cname_rrs = [
            rr
            for rr in message.answers
            if rr.name == pending.qname and rr.rrtype == RRType.CNAME
        ]
        if answer_rrset:
            self._handle_answer(task, pending, message, answer_rrset)
            return
        if cname_rrs and pending.qtype != RRType.CNAME:
            self._handle_cname(task, pending, message, cname_rrs)
            return
        referral = self._extract_referral(task, message)
        if referral is not None:
            cut, ns_rrset, servers = referral
            if servers:
                task.cut = cut
                task.servers = servers
                task.server_index = 0
                self._advance(task)
                return
            if (
                task.depth < self.config.max_glueless_depth
                and self.config.max_glueless_ns > 0
            ):
                self._chase_glueless(task, cut, ns_rrset)
                return
            task.server_index += 1
            self._advance(task)
            return
        # NODATA.
        self._handle_nodata(task, pending, message)

    def _retry_over_tcp(self, pending: _PendingQuery) -> None:
        task = pending.task
        source = self._source_for(pending.server)
        if source is None:
            self._finish_servfail(task)
            return
        self.stats["tcp_fallbacks"] += 1
        sport, msg_id = self._upstream_ids(
            task,
            pending.server,
            pending.qname,
            pending.qtype,
            transport=Transport.TCP,
        )
        query = Message.make_query(
            msg_id,
            pending.qname,
            pending.qtype,
            recursion_desired=self.is_forwarder,
            edns=self.config.edns,
        )
        tcp_pending = _PendingQuery(
            task=task,
            server=pending.server,
            sport=sport,
            msg_id=query.msg_id,
            qname=pending.qname,
            qtype=pending.qtype,
            transport=Transport.TCP,
        )
        task.queries_sent += 1

        def on_response(response: Message, packet: Packet) -> None:
            if (
                response.msg_id == query.msg_id
                and response.question is not None
                and response.question.qname == pending.qname
            ):
                self._handle_upstream(tcp_pending, response)

        self.send_tcp_query(
            query,
            source,
            pending.server,
            on_response,
            sport=sport if self.config.stateless else None,
        )

    def _extract_referral(
        self, task: _ResolutionTask, message: Message
    ) -> tuple[Name, list[RR], list[Address]] | None:
        """Parse a referral; returns (cut, NS set, glue addresses).

        The address list is empty for a glueless delegation — the
        caller decides whether to chase the NS target names.
        """
        ns_rrset = [
            rr
            for rr in message.authority
            if rr.rrtype == RRType.NS
            and rr.name.is_subdomain_of(task.cut)
            and len(rr.name) > len(task.cut)
        ]
        if not ns_rrset:
            return None
        cut = ns_rrset[0].name
        cache = self._ensure_cache()
        glue = [
            rr
            for rr in message.additional
            if rr.rrtype in (RRType.A, RRType.AAAA)
        ]
        # Cache the delegation for future resolutions.
        cache.put_positive(cut, RRType.NS, ns_rrset)
        by_owner: dict[tuple[Name, int], list[RR]] = {}
        for rr in glue:
            by_owner.setdefault((rr.name, rr.rrtype), []).append(rr)
        for (owner, rrtype), rrset in by_owner.items():
            cache.put_positive(owner, rrtype, rrset)
        addresses = [
            rr.rdata.address  # type: ignore[union-attr]
            for rr in glue
            if self._usable_family(rr.rdata.address)  # type: ignore[union-attr]
        ]
        return cut, ns_rrset, addresses

    # -- glueless delegations (the NXNS-relevant path) -----------------------

    def _chase_glueless(
        self, task: _ResolutionTask, cut: Name, ns_rrset: list[RR]
    ) -> None:
        """Resolve NS target addresses for a glue-free referral.

        Every NS target fans out to one sub-resolution per usable
        address family — the amplification primitive behind the NXNS
        attack, bounded by ``max_glueless_ns``.
        """
        self.stats["glueless_chases"] += 1
        task.cut = cut
        task.glueless_ns_rrset = list(ns_rrset)
        targets = [
            rr.rdata.target  # type: ignore[union-attr]
            for rr in ns_rrset[: self.config.max_glueless_ns]
        ]
        families = {a.version for a in self.addresses}
        qtypes = [
            qtype
            for family, qtype in ((4, RRType.A), (6, RRType.AAAA))
            if family in families
        ]
        pending = [
            (target, qtype)
            for target in targets
            for qtype in qtypes
            # A delegation whose NS target is the very name being
            # resolved cannot be chased.
            if not (target == task.qname and qtype == task.qtype)
        ]
        if not pending:
            self._finish_servfail(task)
            return
        task.glueless_outstanding = len(pending)

        def on_done(rcode: Rcode, answers: list[RR]) -> None:
            task.glueless_outstanding -= 1
            if task.done or task.glueless_outstanding > 0:
                return
            self._resume_after_glueless(task)

        for target, qtype in pending:
            self._resolve_internal(target, qtype, task.depth + 1, on_done)

    def _resume_after_glueless(self, task: _ResolutionTask) -> None:
        addresses = self._addresses_for_ns(task.glueless_ns_rrset)
        if not addresses:
            task.server_index += 1
            self._advance(task)
            return
        task.servers = addresses
        task.server_index = 0
        self._advance(task)

    def _resolve_internal(
        self,
        qname: Name,
        qtype: int,
        depth: int,
        callback,
    ) -> None:
        """Resolve (*qname*, *qtype*) for internal use (NS targets)."""
        cache = self._ensure_cache()
        entry = cache.get(qname, qtype)
        if entry is not None:
            callback(entry.rcode, list(entry.rrset))
            return
        if cache.covering_nxdomain(qname) is not None:
            callback(Rcode.NXDOMAIN, [])
            return
        key = (qname, qtype)
        task = self._tasks.get(key)
        if task is not None and not task.done:
            # Joining an in-flight task from a glueless chase can close
            # a dependency cycle (the in-flight task may itself be
            # waiting on this chase).  Fail fast instead; the parent
            # falls back to its next server.
            callback(Rcode.SERVFAIL, [])
            return
        task = _ResolutionTask(qname, qtype, key=key, depth=depth)
        task.internal_callbacks.append(callback)
        task.qmin_active = False  # NS-target lookups are not minimized
        self._tasks[key] = task
        self._start(task)

    def _handle_answer(
        self,
        task: _ResolutionTask,
        pending: _PendingQuery,
        message: Message,
        answer_rrset: list[RR],
    ) -> None:
        cache = self._ensure_cache()
        if pending.qname == task.qname and pending.qtype == task.qtype:
            cache.put_positive(task.qname, task.qtype, answer_rrset)
            self._finish(task, Rcode.NOERROR, message.answers)
            return
        # Positive answer to a minimized NS probe: the name exists and is
        # a zone cut; descend using the returned servers if usable.
        task.cut = pending.qname
        cache.put_positive(pending.qname, RRType.NS, answer_rrset)
        glue_addresses = [
            rr.rdata.address  # type: ignore[union-attr]
            for rr in message.additional
            if rr.rrtype in (RRType.A, RRType.AAAA)
            and self._usable_family(rr.rdata.address)  # type: ignore[union-attr]
        ]
        if glue_addresses:
            task.servers = glue_addresses
            task.server_index = 0
        self._advance(task)

    def _handle_cname(
        self,
        task: _ResolutionTask,
        pending: _PendingQuery,
        message: Message,
        cname_rrs: list[RR],
    ) -> None:
        cache = self._ensure_cache()
        cache.put_positive(pending.qname, RRType.CNAME, cname_rrs)
        if task.cname_depth >= self.config.max_cname_depth:
            self._finish_servfail(task)
            return
        target = cname_rrs[0].rdata.target  # type: ignore[union-attr]
        task.cname_depth += 1
        task.qname = target
        task.qmin_active = self.config.qname_minimization is not None
        cut, servers = self._deepest_cached_cut(target)
        task.cut = cut
        task.servers = servers
        task.server_index = 0
        self._advance(task)

    def _handle_nxdomain(
        self, task: _ResolutionTask, pending: _PendingQuery, message: Message
    ) -> None:
        cache = self._ensure_cache()
        ttl = self._negative_ttl(message)
        cache.put_negative(pending.qname, pending.qtype, Rcode.NXDOMAIN, ttl)
        if task.qmin_active and pending.qname != task.qname:
            if self.config.qname_minimization == "strict":
                # RFC 8020: nothing exists under an NXDOMAIN name, so the
                # resolver never sends the full query name (Section 3.6.4).
                self._finish(task, Rcode.NXDOMAIN, [])
                return
            # Relaxed: retry with the full query name.
            task.qmin_active = False
            self._advance(task)
            return
        self._finish(task, Rcode.NXDOMAIN, [])

    def _handle_nodata(
        self, task: _ResolutionTask, pending: _PendingQuery, message: Message
    ) -> None:
        cache = self._ensure_cache()
        ttl = self._negative_ttl(message)
        if task.qmin_active and pending.qname != task.qname:
            # The minimized name exists but has no NS set: an empty
            # non-terminal or an in-zone node.  Descend one label.
            task.cut = pending.qname
            self._advance(task)
            return
        cache.put_negative(pending.qname, pending.qtype, Rcode.NOERROR, ttl)
        self._finish(task, Rcode.NOERROR, [])

    def _negative_ttl(self, message: Message) -> int:
        for rr in message.authority:
            if rr.rrtype == RRType.SOA:
                return min(rr.ttl, rr.rdata.minimum)  # type: ignore[union-attr]
        return self.config.negative_ttl

    # -- completion ----------------------------------------------------------

    def _finish_forwarded(
        self, task: _ResolutionTask, message: Message
    ) -> None:
        cache = self._ensure_cache()
        if message.rcode is Rcode.NOERROR and message.answers:
            answer_rrset = [
                rr
                for rr in message.answers
                if rr.name == task.qname and rr.rrtype == task.qtype
            ]
            if answer_rrset:
                cache.put_positive(task.qname, task.qtype, answer_rrset)
        elif message.rcode in (Rcode.NOERROR, Rcode.NXDOMAIN):
            cache.put_negative(
                task.qname, task.qtype, message.rcode,
                self._negative_ttl(message),
            )
        self._finish(task, message.rcode, message.answers)

    def _finish_servfail(self, task: _ResolutionTask) -> None:
        self.stats["servfail"] += 1
        self._finish(task, Rcode.SERVFAIL, [])

    def _finish(
        self, task: _ResolutionTask, rcode: Rcode, answers: list[RR]
    ) -> None:
        if task.done:
            return
        task.done = True
        hist = self._mx_task_sim
        if hist is not None and self.fabric is not None:
            hist.observe(self.fabric.now - task.started_sim)
        jr = self._journal
        if jr is not None and self.fabric is not None:
            jr.response(
                self.fabric.now,
                jr.probe_for(task.qname),
                self.name,
                jr.name(task.qname),
                task.qtype,
                rcode.name,
                self.fabric.now - task.started_sim,
            )
        if task.deadline_event is not None and self.fabric is not None:
            self.fabric.loop.cancel(task.deadline_event)
        if task.key is not None:
            self._tasks.pop(task.key, None)
        for waiter in task.waiters:
            response = waiter.query.make_response()
            response.flags |= Flag.RA
            response.rcode = rcode
            response.answers.extend(answers)
            waiter.respond(response)
        for callback in task.internal_callbacks:
            callback(rcode, list(answers))
