"""Stub resolver: a simple DNS client host.

Used by examples and tests to query resolvers the ordinary way (with a
genuine source address) and collect responses.  The measurement scanner
in :mod:`repro.core.scanner` does *not* use this class — it crafts
packets with spoofed sources directly — but the stub demonstrates the
legitimate client path through the same infrastructure.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from random import Random

from ..netsim.addresses import Address
from ..netsim.packet import Packet
from ..oskernel.profiles import OSProfile, os_profile
from .message import Message
from .name import Name
from .transport import DNSHost

#: Callback receiving (response message | None on timeout).
StubCallback = Callable[[Message | None], None]


@dataclass
class _PendingStubQuery:
    callback: StubCallback
    qname: Name
    qtype: int


class StubResolver(DNSHost):
    """A client that sends recursive queries and awaits responses."""

    def __init__(
        self,
        name: str,
        asn: int,
        rng: Random,
        *,
        profile: OSProfile | None = None,
        timeout: float = 5.0,
    ) -> None:
        super().__init__(name, asn, profile or os_profile("ubuntu-modern"), rng)
        self.timeout = timeout
        self._pending: dict[tuple[Address, int, int], _PendingStubQuery] = {}
        self.responses: list[Message] = []
        self.timeouts = 0

    def query(
        self,
        server: Address,
        qname: Name,
        qtype: int,
        callback: StubCallback | None = None,
    ) -> Message:
        """Send a recursive query to *server*; return the query message."""
        source = next(
            (a for a in self.addresses if a.version == server.version), None
        )
        if source is None:
            raise ValueError(f"no local address for family of {server}")
        sport = 1024 + self.rng.randrange(64512)
        msg_id = self.rng.randrange(0x10000)
        query = Message.make_query(msg_id, qname, qtype)
        pending = _PendingStubQuery(callback or (lambda _: None), qname, qtype)
        key = (server, sport, msg_id)
        self._pending[key] = pending
        self.send_udp_query(query, source, server, sport)
        if self.fabric is not None:
            self.fabric.loop.schedule(
                self.timeout, lambda: self._on_timeout(key)
            )
        return query

    def handle_dns_response(self, message: Message, packet: Packet) -> None:
        key = (packet.src, packet.dport, message.msg_id)
        pending = self._pending.pop(key, None)
        if pending is None:
            return
        self.responses.append(message)
        pending.callback(message)

    def _on_timeout(self, key: tuple[Address, int, int]) -> None:
        pending = self._pending.pop(key, None)
        if pending is None:
            return
        self.timeouts += 1
        pending.callback(None)
