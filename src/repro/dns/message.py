"""DNS messages: header, question, sections, and full wire codec.

The encoder performs RFC 1035 §4.1.4 name compression across all owner
names (rdata names are left uncompressed, which is always legal and is
what modern implementations emit for most types).  The decoder accepts
compressed names anywhere.  EDNS0 is supported through an OPT record in
the additional section, exposing the advertised UDP payload size that
governs truncation.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field, replace

from .name import Name
from .rr import RR, Opaque, Rdata, RRClass, RRType, decode_rdata

HEADER_STRUCT = struct.Struct("!HHHHHH")
DEFAULT_UDP_PAYLOAD_SIZE = 512
EDNS_UDP_PAYLOAD_SIZE = 4096

#: EDNS option code for DNS cookies (RFC 7873).
EDNS_COOKIE = 10


def encode_edns_options(options: list[tuple[int, bytes]]) -> bytes:
    """Serialize EDNS option TLVs for OPT rdata (RFC 6891 §6.1.2)."""
    out = bytearray()
    for code, data in options:
        if not 0 <= code <= 0xFFFF:
            raise ValueError(f"bad option code: {code}")
        if len(data) > 0xFFFF:
            raise ValueError("option data too long")
        out += struct.pack("!HH", code, len(data))
        out += data
    return bytes(out)


def decode_edns_options(data: bytes) -> list[tuple[int, bytes]]:
    """Parse EDNS option TLVs from OPT rdata."""
    options: list[tuple[int, bytes]] = []
    cursor = 0
    while cursor < len(data):
        if cursor + 4 > len(data):
            raise ValueError("truncated EDNS option header")
        code, length = struct.unpack_from("!HH", data, cursor)
        cursor += 4
        if cursor + length > len(data):
            raise ValueError("truncated EDNS option data")
        options.append((code, data[cursor : cursor + length]))
        cursor += length
    return options


class Opcode(enum.IntEnum):
    """DNS opcodes (QUERY is the only one the simulation sends)."""

    QUERY = 0
    NOTIFY = 4
    UPDATE = 5


class Rcode(enum.IntEnum):
    """Response codes."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5
    NOTAUTH = 9


class Flag(enum.IntFlag):
    """Header flag bits (QR/AA/TC/RD/RA in their wire positions)."""

    QR = 0x8000
    AA = 0x0400
    TC = 0x0200
    RD = 0x0100
    RA = 0x0080


#: Header bits the decoder preserves; built once so parsing a message
#: does not re-run five IntFlag ``|`` operations.
_HEADER_FLAG_MASK = int(Flag.QR | Flag.AA | Flag.TC | Flag.RD | Flag.RA)


@dataclass(frozen=True)
class Question:
    """The question section entry: name, type, class."""

    qname: Name
    qtype: int
    qclass: int = RRClass.IN

    def to_text(self) -> str:
        return f"{self.qname} {RRType.label(self.qtype)}"


class _Writer:
    """Wire encoder with name compression state."""

    def __init__(self) -> None:
        self.out = bytearray()
        self._offsets: dict[tuple[bytes, ...], int] = {}

    def write_name(self, name_: Name, *, compress: bool = True) -> None:
        labels = name_.labels
        key = name_._key
        while key:
            if compress and key in self._offsets:
                pointer = self._offsets[key]
                self.out += struct.pack("!H", 0xC000 | pointer)
                return
            if len(self.out) < 0x3FFF:
                self._offsets[key] = len(self.out)
            label = labels[len(labels) - len(key)]
            self.out.append(len(label))
            self.out += label
            key = key[1:]
        self.out.append(0)

    def write(self, data: bytes) -> None:
        self.out += data


@dataclass
class Message:
    """A complete DNS message."""

    msg_id: int
    flags: Flag = Flag(0)
    opcode: Opcode = Opcode.QUERY
    rcode: Rcode = Rcode.NOERROR
    question: Question | None = None
    answers: list[RR] = field(default_factory=list)
    authority: list[RR] = field(default_factory=list)
    additional: list[RR] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.msg_id <= 0xFFFF:
            raise ValueError(f"message ID out of range: {self.msg_id}")

    # -- convenience -----------------------------------------------------

    @classmethod
    def make_query(
        cls,
        msg_id: int,
        qname: Name,
        qtype: int,
        *,
        recursion_desired: bool = True,
        edns: bool = True,
    ) -> "Message":
        """Build a standard query, optionally with an EDNS0 OPT record."""
        flags = Flag.RD if recursion_desired else Flag(0)
        message = cls(msg_id, flags=flags, question=Question(qname, qtype))
        if edns:
            message.additional.append(_make_opt(EDNS_UDP_PAYLOAD_SIZE))
        return message

    def make_response(self, *, authoritative: bool = False) -> "Message":
        """Build an empty response mirroring this query's ID and question."""
        flags = Flag.QR
        if authoritative:
            flags |= Flag.AA
        if self.flags & Flag.RD:
            flags |= Flag.RD
        response = Message(self.msg_id, flags=flags, question=self.question)
        if self.edns_payload_size() is not None:
            response.additional.append(_make_opt(EDNS_UDP_PAYLOAD_SIZE))
        return response

    @property
    def is_response(self) -> bool:
        return bool(self.flags & Flag.QR)

    @property
    def is_truncated(self) -> bool:
        return bool(self.flags & Flag.TC)

    def truncated_copy(self) -> "Message":
        """Return a copy with TC set and the answer sections emptied."""
        copy = replace(
            self,
            flags=self.flags | Flag.TC,
            answers=[],
            authority=[],
            additional=[rr for rr in self.additional if rr.rrtype == RRType.OPT],
        )
        return copy

    def edns_payload_size(self) -> int | None:
        """Return the EDNS0 advertised UDP payload size, or ``None``."""
        for rr in self.additional:
            if rr.rrtype == RRType.OPT:
                return rr.rrclass  # OPT smuggles the size in the class field
        return None

    def edns_options(self) -> list[tuple[int, bytes]]:
        """Return the EDNS option TLVs, or an empty list."""
        for rr in self.additional:
            if rr.rrtype == RRType.OPT:
                return decode_edns_options(rr.rdata.to_wire())
        return []

    def edns_option(self, code: int) -> bytes | None:
        """Return the data of the first EDNS option with *code*."""
        for option_code, data in self.edns_options():
            if option_code == code:
                return data
        return None

    def set_edns_option(self, code: int, data: bytes) -> None:
        """Set (or replace) an EDNS option, adding OPT if necessary."""
        options = [
            (c, d) for c, d in self.edns_options() if c != code
        ]
        options.append((code, data))
        payload = self.edns_payload_size() or EDNS_UDP_PAYLOAD_SIZE
        self.additional = [
            rr for rr in self.additional if rr.rrtype != RRType.OPT
        ]
        self.additional.append(_make_opt(payload, options))

    def max_udp_size(self) -> int:
        """UDP payload limit this message's sender can accept."""
        return self.edns_payload_size() or DEFAULT_UDP_PAYLOAD_SIZE

    # -- wire format -----------------------------------------------------

    def to_wire(self) -> bytes:
        writer = _Writer()
        flags_field = (
            int(self.flags) | (int(self.opcode) << 11) | int(self.rcode)
        )
        writer.write(
            HEADER_STRUCT.pack(
                self.msg_id,
                flags_field,
                1 if self.question else 0,
                len(self.answers),
                len(self.authority),
                len(self.additional),
            )
        )
        if self.question:
            writer.write_name(self.question.qname)
            writer.write(
                struct.pack("!HH", self.question.qtype, self.question.qclass)
            )
        for section in (self.answers, self.authority, self.additional):
            for rr in section:
                _write_rr(writer, rr)
        return bytes(writer.out)

    @classmethod
    def from_wire(cls, data: bytes) -> "Message":
        try:
            return cls._from_wire(data)
        except struct.error as exc:
            # Truncated fixed-width fields; normalize to the decoder's
            # single failure type.
            raise ValueError(f"truncated message: {exc}") from exc

    @classmethod
    def _from_wire(cls, data: bytes) -> "Message":
        if len(data) < HEADER_STRUCT.size:
            raise ValueError("message shorter than header")
        (msg_id, flags_field, qdcount, ancount, nscount, arcount) = (
            HEADER_STRUCT.unpack_from(data, 0)
        )
        opcode = Opcode((flags_field >> 11) & 0xF)
        rcode = Rcode(flags_field & 0xF)
        flags = Flag(flags_field & _HEADER_FLAG_MASK)
        offset = HEADER_STRUCT.size
        question = None
        if qdcount > 1:
            raise ValueError(f"unsupported qdcount: {qdcount}")
        if qdcount == 1:
            qname, offset = Name.from_wire(data, offset)
            qtype, qclass = struct.unpack_from("!HH", data, offset)
            offset += 4
            question = Question(qname, qtype, qclass)
        message = cls(
            msg_id,
            flags=flags,
            opcode=opcode,
            rcode=rcode,
            question=question,
        )
        for section, count in (
            (message.answers, ancount),
            (message.authority, nscount),
            (message.additional, arcount),
        ):
            for _ in range(count):
                rr, offset = _read_rr(data, offset)
                section.append(rr)
        return message

    def summary(self) -> str:
        """One-line description used in logs and test failures."""
        kind = "response" if self.is_response else "query"
        question = self.question.to_text() if self.question else "<none>"
        return (
            f"{kind} id={self.msg_id} {question} rcode={self.rcode.name} "
            f"an={len(self.answers)} ns={len(self.authority)} "
            f"ar={len(self.additional)}"
        )


def _make_opt(
    payload_size: int, options: list[tuple[int, bytes]] | None = None
) -> RR:
    from .name import ROOT

    rdata = encode_edns_options(options) if options else b""
    return RR(ROOT, RRType.OPT, payload_size, 0, Opaque(RRType.OPT, rdata))


def _write_rr(writer: _Writer, rr: RR) -> None:
    writer.write_name(rr.name)
    writer.write(struct.pack("!HHI", rr.rrtype, rr.rrclass, rr.ttl))
    rdata = rr.rdata.to_wire()
    writer.write(struct.pack("!H", len(rdata)))
    writer.write(rdata)


def _read_rr(data: bytes, offset: int) -> tuple[RR, int]:
    owner, offset = Name.from_wire(data, offset)
    rrtype, rrclass, ttl, rdlength = struct.unpack_from("!HHIH", data, offset)
    offset += 10
    if offset + rdlength > len(data):
        raise ValueError("truncated rdata")
    raw = data[offset : offset + rdlength]
    offset += rdlength
    if raw and rrtype in (RRType.NS, RRType.CNAME, RRType.PTR, RRType.SOA):
        raw = _decompress_rdata_names(data, offset - rdlength, rrtype, raw)
    if rrtype == RRType.OPT or not raw:
        # OPT rdata is opaque; empty rdata appears in dynamic-update
        # delete-RRset entries (RFC 2136 §2.5.2) for any type.
        rdata: Rdata = Opaque(rrtype, raw)
    else:
        rdata = decode_rdata(rrtype, raw)
    if rrtype == RRType.OPT:
        ttl = 0  # extended rcode/flags unused by the simulation
    return RR(owner, rrtype, rrclass, ttl, rdata), offset


def _decompress_rdata_names(
    message: bytes, rdata_offset: int, rrtype: int, raw: bytes
) -> bytes:
    """Rewrite compressed names inside rdata as uncompressed bytes.

    Incoming messages may compress names in NS/CNAME/PTR/SOA rdata; the
    typed decoders expect self-contained bytes, so resolve pointers
    against the full message here.
    """
    if rrtype in (RRType.NS, RRType.CNAME, RRType.PTR):
        target, _ = Name.from_wire(message, rdata_offset)
        return target.to_wire()
    # SOA: two names then five 32-bit integers.
    mname, offset = Name.from_wire(message, rdata_offset)
    rname, offset = Name.from_wire(message, offset)
    tail = message[offset : offset + 20]
    return mname.to_wire() + rname.to_wire() + tail
