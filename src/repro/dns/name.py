"""Domain names: parsing, comparison, and wire-format encoding.

Names are immutable tuples of label bytes.  Comparison and hashing are
case-insensitive per RFC 1035 §2.3.3, while the original octets are
preserved for re-serialization.  Wire-format decoding understands
RFC 1035 §4.1.4 compression pointers (with loop protection); encoding
with compression lives in :mod:`repro.dns.wire` because it needs
whole-message offset state.
"""

from __future__ import annotations

import functools
from collections.abc import Iterator

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255
_POINTER_MASK = 0xC0


class NameError_(ValueError):
    """A malformed domain name (bad label length, bad pointer, ...)."""


def _casefold_label(label: bytes) -> bytes:
    return label.lower()


@functools.total_ordering
class Name:
    """An absolute DNS domain name.

    Construct from presentation format with :meth:`from_text` (or the
    module-level :func:`name` helper), or from labels directly.  The root
    name is the empty tuple of labels and renders as ``"."``.
    """

    __slots__ = ("labels", "_key", "_hash")

    def __init__(self, labels: tuple[bytes, ...]) -> None:
        total = 0
        for label in labels:
            if not label:
                raise NameError_("empty interior label")
            if len(label) > MAX_LABEL_LENGTH:
                raise NameError_(f"label too long: {len(label)} octets")
            total += len(label) + 1
        if total + 1 > MAX_NAME_LENGTH:
            raise NameError_(f"name too long: {total + 1} octets")
        self.labels = labels
        self._key = tuple(map(bytes.lower, labels))

    @classmethod
    def _from_validated(
        cls, labels: tuple[bytes, ...], key: tuple[bytes, ...]
    ) -> "Name":
        """Construct from labels already known to satisfy the length
        rules, with their casefolded key in hand.  Only for derivations
        of existing names (:meth:`parent`, :meth:`child`), where
        re-validating and re-casefolding every label would dominate the
        per-packet cost of name manipulation.
        """
        instance = cls.__new__(cls)
        instance.labels = labels
        instance._key = key
        return instance

    # -- construction ----------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse presentation format; a trailing dot is optional."""
        if text in (".", ""):
            return ROOT
        stripped = text.rstrip(".")
        labels = tuple(
            label.encode("ascii") for label in stripped.split(".")
        )
        if any(not label for label in labels):
            raise NameError_(f"empty label in {text!r}")
        return cls(labels)

    @classmethod
    def from_labels(cls, *labels: str | bytes) -> "Name":
        """Build a name from individual labels, most specific first."""
        encoded = tuple(
            label.encode("ascii") if isinstance(label, str) else label
            for label in labels
        )
        return cls(encoded)

    # -- structure -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def is_root(self) -> bool:
        """True for the root name ``"."``."""
        return not self.labels

    def parent(self) -> "Name":
        """Return the name with the leftmost label removed."""
        if self.is_root:
            raise NameError_("the root name has no parent")
        return Name._from_validated(self.labels[1:], self._key[1:])

    def child(self, label: str | bytes) -> "Name":
        """Return the name with *label* prepended."""
        if isinstance(label, str):
            label = label.encode("ascii")
        if not label or len(label) > MAX_LABEL_LENGTH:
            raise NameError_(f"bad label length: {len(label)} octets")
        total = sum(map(len, self.labels)) + len(self.labels)
        if total + len(label) + 2 > MAX_NAME_LENGTH:
            raise NameError_(
                f"name too long: {total + len(label) + 2} octets"
            )
        return Name._from_validated(
            (label,) + self.labels, (label.lower(),) + self._key
        )

    def is_subdomain_of(self, other: "Name") -> bool:
        """True if *self* equals *other* or sits beneath it."""
        if len(other.labels) > len(self.labels):
            return False
        offset = len(self._key) - len(other._key)
        return self._key[offset:] == other._key

    def relativize(self, origin: "Name") -> tuple[bytes, ...]:
        """Return the labels of *self* left of *origin* (which must contain it)."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        return self.labels[: len(self.labels) - len(origin.labels)]

    def ancestors(self) -> Iterator["Name"]:
        """Yield self, then each parent up to and including the root."""
        current = self
        while True:
            yield current
            if current.is_root:
                return
            current = current.parent()

    # -- comparison ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Name) and self._key == other._key

    def __lt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        # Canonical DNS ordering: compare from the rightmost label.
        return tuple(reversed(self._key)) < tuple(reversed(other._key))

    def __hash__(self) -> int:
        # Names key the zone/record dicts consulted on every simulated
        # query, so the tuple hash is computed once and memoized.
        try:
            return self._hash
        except AttributeError:
            value = hash(self._key)
            self._hash = value
            return value

    def __getstate__(self):
        # The memoized hash must never cross a pickle boundary: tuple
        # hashes are salted per process (PYTHONHASHSEED), so a name
        # unpickled with the builder's hash silently misses in every
        # dict keyed by names created in the loading process.
        return (self.labels, self._key)

    def __setstate__(self, state) -> None:
        self.labels, self._key = state

    # -- text and wire ---------------------------------------------------

    def __str__(self) -> str:
        if self.is_root:
            return "."
        return ".".join(l.decode("ascii") for l in self.labels) + "."

    def __repr__(self) -> str:
        return f"Name({str(self)!r})"

    def to_wire(self) -> bytes:
        """Encode without compression."""
        out = bytearray()
        for label in self.labels:
            out.append(len(label))
            out += label
        out.append(0)
        return bytes(out)

    @classmethod
    def from_wire(cls, data: bytes, offset: int) -> tuple["Name", int]:
        """Decode a (possibly compressed) name at *offset*.

        Returns the name and the offset just past its encoding in the
        original stream (pointers do not advance the outer cursor beyond
        the two pointer octets).
        """
        labels: list[bytes] = []
        cursor = offset
        consumed: int | None = None
        seen_pointers: set[int] = set()
        while True:
            if cursor >= len(data):
                raise NameError_("truncated name")
            length = data[cursor]
            if length & _POINTER_MASK == _POINTER_MASK:
                if cursor + 1 >= len(data):
                    raise NameError_("truncated compression pointer")
                target = ((length & 0x3F) << 8) | data[cursor + 1]
                if target in seen_pointers:
                    raise NameError_("compression pointer loop")
                if target >= cursor:
                    raise NameError_("forward compression pointer")
                seen_pointers.add(target)
                if consumed is None:
                    consumed = cursor + 2
                cursor = target
                continue
            if length & _POINTER_MASK:
                raise NameError_(f"reserved label type: {length:#x}")
            cursor += 1
            if length == 0:
                break
            if cursor + length > len(data):
                raise NameError_("truncated label")
            labels.append(data[cursor : cursor + length])
            cursor += length
        if consumed is None:
            consumed = cursor
        return cls(tuple(labels)), consumed


#: The root name, ``"."``.
ROOT = Name(())


def name(text: str) -> Name:
    """Shorthand for :meth:`Name.from_text`."""
    return Name.from_text(text)
