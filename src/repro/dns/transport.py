"""Transport glue: DNS hosts speaking UDP and (simplified) TCP.

:class:`DNSHost` extends the fabric's :class:`~repro.netsim.fabric.Host`
with the kernel admission stack (Table 6 behaviour) and the plumbing to
move wire-format DNS messages over UDP datagrams or a three-step TCP
exchange (SYN, SYN|ACK, data).  The TCP SYN carries the sender OS's
TCP/IP signature — that is the packet p0f fingerprints in Section 5.3.1.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from random import Random

from ..netsim.addresses import Address
from ..netsim.fabric import Host
from ..netsim.packet import Packet, TCPFlag, TCPSignature, Transport
from ..oskernel.profiles import OSProfile
from ..oskernel.stack import NetworkStack
from .message import Message

#: Callback a server uses to send a DNS response for a given query packet.
Responder = Callable[[Message], None]

#: Callback invoked with the response message when a client exchange
#: completes (or never, if the response is lost).
ResponseHandler = Callable[[Message, Packet], None]


@dataclass
class _TCPClientState:
    """Pending client-side TCP exchange, keyed by local (addr, port)."""

    query: Message
    handler: ResponseHandler


class DNSHost(Host):
    """A fabric host that talks DNS.

    Subclasses implement :meth:`handle_dns`.  The host applies its OS
    profile's packet-admission rules before anything reaches the DNS
    layer, so spoofed-local packets live or die exactly as in the
    paper's Table 6 lab.
    """

    def __init__(
        self, name: str, asn: int, os_profile: OSProfile, rng: Random
    ) -> None:
        super().__init__(name, asn)
        self.os_profile = os_profile
        # Effective SYN signature; scenarios may overwrite this to model
        # middlebox normalization or stacks absent from the p0f database.
        self.tcp_signature = os_profile.tcp_signature
        self.rng = rng
        self.stack = NetworkStack(os_profile, local_addresses=self.addresses)
        self._tcp_clients: dict[tuple[Address, int, int], _TCPClientState] = {}
        self._peer_signatures: dict[
            tuple[Address, int], tuple["TCPSignature", int]
        ] = {}
        self._tcp_sport = 20000 + rng.randrange(10000)
        self.malformed_count = 0

    # -- inbound ---------------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        if not self.stack.accepts(packet):
            return
        if packet.transport is Transport.TCP:
            self._handle_tcp(packet)
            return
        self._handle_udp(packet)

    def _handle_udp(self, packet: Packet) -> None:
        try:
            message = Message.from_wire(packet.payload)
        except ValueError:
            self.malformed_count += 1
            return
        if message.is_response:
            self.handle_dns_response(message, packet)
            return

        def respond(response: Message) -> None:
            wire = response.to_wire()
            if len(wire) > message.max_udp_size():
                wire = response.truncated_copy().to_wire()
            self.send(packet.reply(wire))

        self.handle_dns(message, packet, Transport.UDP, respond)

    def _handle_tcp(self, packet: Packet) -> None:
        if packet.tcp_flags & TCPFlag.SYN and packet.tcp_flags & TCPFlag.ACK:
            self._tcp_client_established(packet)
            return
        if packet.tcp_flags & TCPFlag.SYN:
            # Server side: remember the fingerprintable SYN, then complete
            # the handshake.
            if packet.tcp_signature is not None:
                self._peer_signatures[(packet.src, packet.sport)] = (
                    packet.tcp_signature,
                    packet.observed_ttl,
                )
            self.send(
                packet.reply(
                    b"",
                    tcp_flags=TCPFlag.SYN | TCPFlag.ACK,
                    tcp_signature=self.tcp_signature,
                    ttl=self.tcp_signature.initial_ttl,
                )
            )
            return
        if not packet.payload:
            return
        try:
            message = Message.from_wire(packet.payload)
        except ValueError:
            self.malformed_count += 1
            return
        if message.is_response:
            key = (packet.src, packet.sport, packet.dport)
            state = self._tcp_clients.pop(key, None)
            if state is not None:
                state.handler(message, packet)
            else:
                self.handle_dns_response(message, packet)
            return

        def respond(response: Message) -> None:
            # No size limit over TCP; never truncate.
            self.send(
                packet.reply(response.to_wire(), tcp_flags=TCPFlag.ACK)
            )

        self.handle_dns(message, packet, Transport.TCP, respond)

    def _tcp_client_established(self, packet: Packet) -> None:
        state = self._tcp_clients.get((packet.src, packet.sport, packet.dport))
        if state is None:
            return
        self.send(
            packet.reply(state.query.to_wire(), tcp_flags=TCPFlag.ACK)
        )

    # -- outbound --------------------------------------------------------

    def send_udp_query(
        self,
        query: Message,
        src: Address,
        dst: Address,
        sport: int,
        *,
        dport: int = 53,
    ) -> Packet:
        """Send *query* over UDP; returns the packet for bookkeeping."""
        packet = Packet(
            src=src,
            dst=dst,
            sport=sport,
            dport=dport,
            payload=query.to_wire(),
            transport=Transport.UDP,
        )
        self.send(packet)
        return packet

    def send_tcp_query(
        self,
        query: Message,
        src: Address,
        dst: Address,
        handler: ResponseHandler,
        *,
        dport: int = 53,
        sport: int | None = None,
    ) -> Packet:
        """Open a TCP exchange carrying *query*; *handler* gets the reply.

        The SYN is stamped with this host's OS TCP signature, which is
        what a passive fingerprinting tap at the server observes.  When
        *sport* is omitted the host's incrementing ephemeral-port stream
        is used; stateless callers pass a content-derived port instead.
        """
        if sport is None:
            self._tcp_sport = 1024 + (self._tcp_sport - 1023) % 64000 + 1
            sport = self._tcp_sport
        self._tcp_clients[(dst, dport, sport)] = _TCPClientState(query, handler)
        syn = Packet(
            src=src,
            dst=dst,
            sport=sport,
            dport=dport,
            payload=b"",
            transport=Transport.TCP,
            tcp_flags=TCPFlag.SYN,
            tcp_signature=self.tcp_signature,
            ttl=self.tcp_signature.initial_ttl,
        )
        self.send(syn)
        return syn

    def peer_signature(
        self, packet: Packet
    ) -> tuple[TCPSignature, int] | None:
        """Return the (signature, observed TTL) captured from the peer's
        TCP SYN for the flow *packet* belongs to, if any."""
        return self._peer_signatures.get((packet.src, packet.sport))

    # -- subclass API ------------------------------------------------------

    def handle_dns(
        self,
        message: Message,
        packet: Packet,
        transport: Transport,
        respond: Responder,
    ) -> None:
        """Process an inbound DNS *query*; default drops it silently."""

    def handle_dns_response(self, message: Message, packet: Packet) -> None:
        """Process an inbound DNS *response*; default drops it silently."""
