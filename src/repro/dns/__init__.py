"""A self-contained DNS implementation speaking real wire format.

Names, resource records, messages (with compression and EDNS0), zones
with RFC 1034 lookup semantics, a caching recursive resolver with QNAME
minimization and forwarding, an authoritative server with query logging,
and the UDP/TCP transport glue binding them into the simulated Internet.
"""

from .auth import AuthoritativeServer, QueryLogRecord
from .cache import Cache, CacheEntry
from .message import (
    DEFAULT_UDP_PAYLOAD_SIZE,
    Flag,
    Message,
    Opcode,
    Question,
    Rcode,
)
from .name import ROOT, Name, NameError_, name
from .resolver import AccessControl, RecursiveResolver, ResolverConfig
from .rr import (
    A,
    AAAA,
    CNAME,
    NS,
    PTR,
    RR,
    SOA,
    TXT,
    Opaque,
    Rdata,
    RRClass,
    RRType,
    decode_rdata,
)
from .stub import StubResolver
from .transport import DNSHost
from .zone import LookupKind, LookupResult, Zone

__all__ = [
    "A",
    "AAAA",
    "AccessControl",
    "AuthoritativeServer",
    "CNAME",
    "Cache",
    "CacheEntry",
    "DEFAULT_UDP_PAYLOAD_SIZE",
    "DNSHost",
    "Flag",
    "LookupKind",
    "LookupResult",
    "Message",
    "NS",
    "Name",
    "NameError_",
    "Opaque",
    "Opcode",
    "PTR",
    "Question",
    "QueryLogRecord",
    "RR",
    "RRClass",
    "RRType",
    "Rcode",
    "Rdata",
    "RecursiveResolver",
    "ResolverConfig",
    "ROOT",
    "SOA",
    "StubResolver",
    "TXT",
    "Zone",
    "decode_rdata",
    "name",
]
