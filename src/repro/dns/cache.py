"""Resolver cache with positive and negative (RFC 2308) entries.

Entries expire against the shared simulated clock.  The cache also
records NXDOMAIN *cuts*: per RFC 8020, a cached NXDOMAIN for a name
implies nothing exists beneath it, which is exactly the interaction that
cost the paper visibility into QNAME-minimizing resolvers (Section
3.6.4).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from .message import Rcode
from .name import Name
from .rr import RR


@dataclass
class CacheEntry:
    """One cached RRset or negative answer."""

    rrset: list[RR]
    rcode: Rcode
    expires_at: float

    @property
    def is_negative(self) -> bool:
        return not self.rrset


@dataclass
class Cache:
    """(name, type) → entry map with TTL-based expiry.

    ``clock`` is a zero-argument callable returning the current simulated
    time; wiring it to ``fabric.loop`` keeps cache behaviour in lockstep
    with the event simulation.
    """

    clock: Callable[[], float]
    max_entries: int = 100_000
    _entries: dict[tuple[Name, int], CacheEntry] = field(default_factory=dict)
    _nxdomain_names: dict[Name, float] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def put_positive(self, qname: Name, qtype: int, rrset: list[RR]) -> None:
        """Cache a positive answer for its minimum TTL."""
        if not rrset:
            raise ValueError("positive entry with empty RRset")
        ttl = min(rr.ttl for rr in rrset)
        self._store(qname, qtype, CacheEntry(
            list(rrset), Rcode.NOERROR, self.clock() + ttl
        ))

    def put_negative(
        self, qname: Name, qtype: int, rcode: Rcode, ttl: int
    ) -> None:
        """Cache a NODATA or NXDOMAIN answer for *ttl* seconds."""
        if rcode not in (Rcode.NOERROR, Rcode.NXDOMAIN):
            raise ValueError(f"unexpected negative rcode: {rcode}")
        self._store(qname, qtype, CacheEntry([], rcode, self.clock() + ttl))
        if rcode is Rcode.NXDOMAIN:
            self._nxdomain_names[qname] = self.clock() + ttl

    def get(self, qname: Name, qtype: int) -> CacheEntry | None:
        """Return a live entry for (*qname*, *qtype*), or ``None``."""
        key = (qname, qtype)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.expires_at <= self.clock():
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def covering_nxdomain(self, qname: Name) -> Name | None:
        """Return a cached-NXDOMAIN ancestor of *qname*, if any (RFC 8020).

        A resolver honouring RFC 8020 answers NXDOMAIN for *qname*
        immediately when one of its ancestors is known not to exist.
        """
        now = self.clock()
        for ancestor in qname.ancestors():
            expiry = self._nxdomain_names.get(ancestor)
            if expiry is not None:
                if expiry <= now:
                    del self._nxdomain_names[ancestor]
                    continue
                return ancestor
        return None

    def flush(self) -> None:
        """Drop every entry."""
        self._entries.clear()
        self._nxdomain_names.clear()

    def _store(self, qname: Name, qtype: int, entry: CacheEntry) -> None:
        if len(self._entries) >= self.max_entries:
            self._evict_expired()
        if len(self._entries) >= self.max_entries:
            # Evict the entry closest to expiry.
            victim = min(self._entries, key=lambda k: self._entries[k].expires_at)
            del self._entries[victim]
        self._entries[(qname, qtype)] = entry

    def _evict_expired(self) -> None:
        now = self.clock()
        stale = [k for k, e in self._entries.items() if e.expires_at <= now]
        for key in stale:
            del self._entries[key]

    def __len__(self) -> int:
        return len(self._entries)


class NullCache:
    """A cache that remembers nothing.

    Installed by stateless ("anycast") resolvers: a real anycast public
    DNS frontend gives no cache-state guarantees across queries, and for
    the simulation the absence of carried-over state is what makes each
    resolution a pure function of its own query — the property the
    sharded campaign pipeline relies on when different worker processes
    talk to their own replica of the public service.

    Implements the :class:`Cache` surface the resolver consumes; every
    read misses and every write is discarded.
    """

    hits: int = 0
    misses: int = 0

    def put_positive(self, qname: Name, qtype: int, rrset: list[RR]) -> None:
        """Discard the entry."""

    def put_negative(
        self, qname: Name, qtype: int, rcode: Rcode, ttl: int
    ) -> None:
        """Discard the entry."""

    def get(self, qname: Name, qtype: int) -> CacheEntry | None:
        """Always miss."""
        return None

    def covering_nxdomain(self, qname: Name) -> Name | None:
        """Never report a covering NXDOMAIN cut."""
        return None

    def flush(self) -> None:
        """Nothing to drop."""

    def __len__(self) -> int:
        return 0
