"""Resource records: types, classes, and rdata encodings.

Implements the record types the reproduction needs end to end — A,
AAAA, NS, CNAME, SOA, PTR, TXT and the EDNS0 OPT pseudo-record — with
real wire-format rdata.  Unknown types round-trip as opaque bytes
(RFC 3597 style) so a decoder never chokes on what it does not model.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from ipaddress import IPv4Address, IPv6Address

from .name import Name


class RRType(enum.IntEnum):
    """Resource record types (subset plus opaque fallback)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    TXT = 16
    AAAA = 28
    OPT = 41

    @classmethod
    def label(cls, value: int) -> str:
        """Return a mnemonic for *value*, or ``TYPE<n>`` if unknown."""
        try:
            return cls(value).name
        except ValueError:
            return f"TYPE{value}"


class RRClass(enum.IntEnum):
    """Resource record classes (NONE/ANY have special meaning in
    dynamic updates, RFC 2136)."""

    IN = 1
    CH = 3
    NONE = 254
    ANY = 255


class Rdata:
    """Base for typed rdata; subclasses define ``to_wire``/``from_wire``."""

    rrtype: RRType

    def to_wire(self) -> bytes:
        raise NotImplementedError

    def to_text(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_text()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rdata)
            and type(self) is type(other)
            and self.to_wire() == other.to_wire()
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.to_wire()))


@dataclass(frozen=True, eq=False)
class A(Rdata):
    """IPv4 address record."""

    address: IPv4Address
    rrtype = RRType.A

    def to_wire(self) -> bytes:
        return self.address.packed

    def to_text(self) -> str:
        return str(self.address)

    @classmethod
    def from_wire(cls, rdata: bytes) -> "A":
        if len(rdata) != 4:
            raise ValueError(f"A rdata must be 4 octets, got {len(rdata)}")
        return cls(IPv4Address(rdata))


@dataclass(frozen=True, eq=False)
class AAAA(Rdata):
    """IPv6 address record."""

    address: IPv6Address
    rrtype = RRType.AAAA

    def to_wire(self) -> bytes:
        return self.address.packed

    def to_text(self) -> str:
        return str(self.address)

    @classmethod
    def from_wire(cls, rdata: bytes) -> "AAAA":
        if len(rdata) != 16:
            raise ValueError(f"AAAA rdata must be 16 octets, got {len(rdata)}")
        return cls(IPv6Address(rdata))


@dataclass(frozen=True, eq=False)
class NS(Rdata):
    """Delegation to a name server."""

    target: Name
    rrtype = RRType.NS

    def to_wire(self) -> bytes:
        return self.target.to_wire()

    def to_text(self) -> str:
        return str(self.target)

    @classmethod
    def from_wire(cls, rdata: bytes) -> "NS":
        target, _ = Name.from_wire(rdata, 0)
        return cls(target)


@dataclass(frozen=True, eq=False)
class CNAME(Rdata):
    """Canonical-name alias."""

    target: Name
    rrtype = RRType.CNAME

    def to_wire(self) -> bytes:
        return self.target.to_wire()

    def to_text(self) -> str:
        return str(self.target)

    @classmethod
    def from_wire(cls, rdata: bytes) -> "CNAME":
        target, _ = Name.from_wire(rdata, 0)
        return cls(target)


@dataclass(frozen=True, eq=False)
class PTR(Rdata):
    """Reverse-mapping pointer."""

    target: Name
    rrtype = RRType.PTR

    def to_wire(self) -> bytes:
        return self.target.to_wire()

    def to_text(self) -> str:
        return str(self.target)

    @classmethod
    def from_wire(cls, rdata: bytes) -> "PTR":
        target, _ = Name.from_wire(rdata, 0)
        return cls(target)


@dataclass(frozen=True, eq=False)
class SOA(Rdata):
    """Start of authority.

    The experiment leans on two SOA fields (Section 3.7): RNAME carries
    the researchers' contact address and MNAME points at a web server
    describing the project, so suspicious operators can opt out.
    """

    mname: Name
    rname: Name
    serial: int
    refresh: int
    retry: int
    expire: int
    minimum: int
    rrtype = RRType.SOA

    def to_wire(self) -> bytes:
        return (
            self.mname.to_wire()
            + self.rname.to_wire()
            + struct.pack(
                "!IIIII",
                self.serial,
                self.refresh,
                self.retry,
                self.expire,
                self.minimum,
            )
        )

    def to_text(self) -> str:
        return (
            f"{self.mname} {self.rname} {self.serial} {self.refresh} "
            f"{self.retry} {self.expire} {self.minimum}"
        )

    @classmethod
    def from_wire(cls, rdata: bytes) -> "SOA":
        mname, offset = Name.from_wire(rdata, 0)
        rname, offset = Name.from_wire(rdata, offset)
        fields = struct.unpack_from("!IIIII", rdata, offset)
        return cls(mname, rname, *fields)


@dataclass(frozen=True, eq=False)
class TXT(Rdata):
    """Free-form text record."""

    strings: tuple[bytes, ...]
    rrtype = RRType.TXT

    def to_wire(self) -> bytes:
        out = bytearray()
        for chunk in self.strings:
            if len(chunk) > 255:
                raise ValueError("TXT string longer than 255 octets")
            out.append(len(chunk))
            out += chunk
        return bytes(out)

    def to_text(self) -> str:
        return " ".join(
            '"' + chunk.decode("ascii", "replace") + '"'
            for chunk in self.strings
        )

    @classmethod
    def from_wire(cls, rdata: bytes) -> "TXT":
        strings = []
        cursor = 0
        while cursor < len(rdata):
            length = rdata[cursor]
            cursor += 1
            if cursor + length > len(rdata):
                raise ValueError("truncated TXT string")
            strings.append(rdata[cursor : cursor + length])
            cursor += length
        return cls(tuple(strings))

    @classmethod
    def from_text(cls, *strings: str) -> "TXT":
        return cls(tuple(s.encode("ascii") for s in strings))


@dataclass(frozen=True, eq=False)
class Opaque(Rdata):
    """Unknown-type rdata carried as raw octets (RFC 3597)."""

    type_value: int
    data: bytes

    @property
    def rrtype(self) -> int:  # type: ignore[override]
        return self.type_value

    def to_wire(self) -> bytes:
        return self.data

    def to_text(self) -> str:
        return f"\\# {len(self.data)} {self.data.hex()}"


_RDATA_DECODERS = {
    RRType.A: A.from_wire,
    RRType.AAAA: AAAA.from_wire,
    RRType.NS: NS.from_wire,
    RRType.CNAME: CNAME.from_wire,
    RRType.PTR: PTR.from_wire,
    RRType.SOA: SOA.from_wire,
    RRType.TXT: TXT.from_wire,
}


def decode_rdata(rrtype: int, rdata: bytes) -> Rdata:
    """Decode *rdata* for *rrtype*, falling back to :class:`Opaque`."""
    decoder = _RDATA_DECODERS.get(rrtype)  # type: ignore[arg-type]
    if decoder is None:
        return Opaque(rrtype, rdata)
    return decoder(rdata)


@dataclass(frozen=True)
class RR:
    """One resource record: owner name, type, class, TTL and rdata."""

    name: Name
    rrtype: int
    rrclass: int
    ttl: int
    rdata: Rdata

    def __post_init__(self) -> None:
        if not 0 <= self.ttl <= 0x7FFFFFFF:
            raise ValueError(f"TTL out of range: {self.ttl}")

    def to_text(self) -> str:
        return (
            f"{self.name} {self.ttl} "
            f"{RRClass(self.rrclass).name if self.rrclass in iter(RRClass) else self.rrclass} "
            f"{RRType.label(self.rrtype)} {self.rdata.to_text()}"
        )

    def with_ttl(self, ttl: int) -> "RR":
        """Return a copy with a different TTL (used when caching)."""
        return RR(self.name, self.rrtype, self.rrclass, ttl, self.rdata)
