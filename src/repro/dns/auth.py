"""Authoritative DNS server with query logging.

This is the observation point of the whole experiment: the scan never
sees responses to its spoofed queries, so reachability is inferred from
recursive-to-authoritative queries arriving here (Figure 1, step 2).
Every query is logged with arrival time, source address and port,
transport, and — for TCP — the client's SYN fingerprint, which is all
the raw material Sections 4 and 5 analyze.

Two behaviours from the paper's setup are modeled explicitly:

* the experiment zone answers NXDOMAIN for every name that is not
  configured (Section 3.3), with an optional wildcard mode representing
  the "future version" fix of Section 3.6.4; and
* names under a configured *truncation domain* are answered over UDP
  with the TC bit set, forcing the resolver to retry over TCP
  (Section 3.5) and thereby exposing its SYN to fingerprinting.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from random import Random

from ..netsim.packet import Packet, TCPSignature, Transport
from ..oskernel.profiles import OSProfile, os_profile
from .message import EDNS_COOKIE, Flag, Message, Opcode, Rcode
from .name import Name
from .resolver import AccessControl
from .rr import RR, RRClass, RRType
from .transport import DNSHost, Responder
from .zone import LookupKind, Zone


@dataclass(frozen=True, slots=True)
class QueryLogRecord:
    """One query observed at the authoritative server."""

    time: float
    src: object            # Address; kept loose for cheap construction
    sport: int
    qname: Name
    qtype: int
    transport: Transport
    tcp_signature: TCPSignature | None = None
    observed_ttl: int | None = None
    server_name: str = ""


#: Observer invoked synchronously for each logged query.
QueryObserver = Callable[[QueryLogRecord], None]


class AuthoritativeServer(DNSHost):
    """Authoritative-only DNS server bound into the fabric."""

    def __init__(
        self,
        name: str,
        asn: int,
        rng: Random,
        *,
        profile: OSProfile | None = None,
    ) -> None:
        super().__init__(name, asn, profile or os_profile("freebsd"), rng)
        self.zones: dict[Name, Zone] = {}
        self.query_log: list[QueryLogRecord] = []
        self.truncation_domains: list[Name] = []
        self._observers: list[QueryObserver] = []
        self.refuse_all = False
        #: Response Rate Limiting (RRL): maximum UDP responses per
        #: second toward one client /24 (or /64).  0 disables.  Every
        #: ``rrl_slip``-th rate-limited response is sent truncated
        #: instead of dropped, so legitimate clients can retry over TCP.
        self.rrl_limit: float = 0.0
        self.rrl_slip: int = 2
        self.rrl_dropped = 0
        self.rrl_slipped = 0
        self._rrl_buckets: dict[object, tuple[float, float]] = {}
        self._rrl_counter = 0
        #: RFC 2136 dynamic updates: the source-address policy deciding
        #: who may modify zones.  ``None`` rejects all updates.  A
        #: prefix-based policy is the "non-secure dynamic update"
        #: configuration behind zone-poisoning attacks — and exactly
        #: the kind of check a spoofed internal source defeats.
        self.update_acl: AccessControl | None = None
        self.updates_applied = 0
        self.updates_refused = 0
        #: DNS cookie support (RFC 7873): echo the client cookie and
        #: append a server cookie bound to the client address.  Set to
        #: ``None`` to model servers without cookie support.
        self.cookie_secret: bytes | None = bytes(
            rng.randrange(256) for _ in range(16)
        )
        self.cookies_echoed = 0
        #: optional event journal (duck-typed, see repro.obs.journal).
        self._journal = None

    def bind_journal(self, journal) -> None:
        """Record an ``auth.query`` event per logged query from now on."""
        self._journal = journal

    def add_zone(self, zone: Zone) -> Zone:
        """Serve *zone* from this server."""
        self.zones[zone.origin] = zone
        return zone

    def add_truncation_domain(self, domain: Name) -> None:
        """Answer UDP queries at/under *domain* with TC=1 (forces TCP)."""
        self.truncation_domains.append(domain)

    def add_observer(self, observer: QueryObserver) -> None:
        """Call *observer* for every query logged (used for follow-ups)."""
        self._observers.append(observer)

    # -- query handling ----------------------------------------------------

    def handle_dns(
        self,
        message: Message,
        packet: Packet,
        transport: Transport,
        respond: Responder,
    ) -> None:
        if message.question is None:
            return
        self._log_query(message, packet, transport)

        client_cookie = (
            message.edns_option(EDNS_COOKIE)
            if self.cookie_secret is not None
            else None
        )
        if client_cookie is not None and len(client_cookie) >= 8:
            inner_respond = respond

            def respond(response: Message) -> None:  # noqa: A001
                if response.edns_payload_size() is not None:
                    response.set_edns_option(
                        EDNS_COOKIE,
                        client_cookie[:8] + self._server_cookie(packet.src),
                    )
                    self.cookies_echoed += 1
                inner_respond(response)

        if message.opcode is Opcode.UPDATE:
            self._handle_update(message, packet, respond)
            return

        if transport is Transport.UDP and not self._rrl_admit(packet):
            self._rrl_counter += 1
            if self.rrl_slip and self._rrl_counter % self.rrl_slip == 0:
                self.rrl_slipped += 1
                response = message.make_response(authoritative=True)
                response.flags |= Flag.TC
                respond(response)
            else:
                self.rrl_dropped += 1
            return

        if self.refuse_all:
            response = message.make_response()
            response.rcode = Rcode.REFUSED
            respond(response)
            return

        question = message.question
        if transport is Transport.UDP and self._should_truncate(question.qname):
            response = message.make_response(authoritative=True)
            response.flags |= Flag.TC
            respond(response)
            return

        zone = self._zone_for(question.qname)
        if zone is None:
            response = message.make_response()
            response.rcode = Rcode.REFUSED
            respond(response)
            return

        result = zone.lookup(question.qname, question.qtype)
        response = message.make_response(authoritative=True)
        response.answers.extend(result.answers)
        response.authority.extend(result.authority)
        response.additional.extend(
            rr for rr in result.additional if rr.rrtype != RRType.OPT
        )
        if result.kind is LookupKind.NXDOMAIN:
            response.rcode = Rcode.NXDOMAIN
        elif result.kind is LookupKind.REFERRAL:
            response.flags &= ~Flag.AA
        respond(response)

    def _log_query(
        self, message: Message, packet: Packet, transport: Transport
    ) -> None:
        assert message.question is not None
        signature: TCPSignature | None = None
        observed_ttl: int | None = None
        if transport is Transport.TCP:
            captured = self.peer_signature(packet)
            if captured is not None:
                signature, observed_ttl = captured
        record = QueryLogRecord(
            time=self.fabric.now if self.fabric else 0.0,
            src=packet.src,
            sport=packet.sport,
            qname=message.question.qname,
            qtype=message.question.qtype,
            transport=transport,
            tcp_signature=signature,
            observed_ttl=observed_ttl,
            server_name=self.name,
        )
        self.query_log.append(record)
        jr = self._journal
        if jr is not None:
            jr.auth_query(
                record.time,
                jr.probe_for(record.qname),
                self.name,
                jr.addr(record.src),
                record.sport,
                jr.name(record.qname),
                record.qtype,
                record.transport.value,
            )
        for observer in self._observers:
            observer(record)

    def _handle_update(
        self, message: Message, packet: Packet, respond: Responder
    ) -> None:
        """Apply an RFC 2136 dynamic update.

        The wire layout reuses the standard sections: the question
        names the zone, the authority section carries the updates.
        Class IN adds a record; class ANY with empty rdata deletes an
        RRset; class NONE deletes one specific record.  Prerequisites
        are not modeled (the zone-poisoning attack the paper cites
        needs none).
        """
        assert message.question is not None
        response = message.make_response()
        response.opcode = Opcode.UPDATE
        zone = self.zones.get(message.question.qname)
        if zone is None:
            self.updates_refused += 1
            response.rcode = Rcode.NOTAUTH
            respond(response)
            return
        if self.update_acl is None or not self.update_acl.allows(packet.src):  # type: ignore[arg-type]
            self.updates_refused += 1
            response.rcode = Rcode.REFUSED
            respond(response)
            return
        try:
            for rr in message.authority:
                self._apply_update(zone, rr)
        except ValueError:
            response.rcode = Rcode.FORMERR
            respond(response)
            return
        self.updates_applied += 1
        respond(response)

    def _apply_update(self, zone: Zone, rr: RR) -> None:
        if rr.rrclass == RRClass.IN:
            zone.add(rr)
        elif rr.rrclass == RRClass.ANY:
            zone.remove_rrset(rr.name, rr.rrtype)
        elif rr.rrclass == RRClass.NONE:
            zone.remove_record(
                RR(rr.name, rr.rrtype, RRClass.IN, 0, rr.rdata)
            )
        else:
            raise ValueError(f"unsupported update class: {rr.rrclass}")

    def _server_cookie(self, src: object) -> bytes:
        """Server cookie: a keyed hash over the client address."""
        import hashlib

        assert self.cookie_secret is not None
        return hashlib.blake2b(
            str(src).encode(), key=self.cookie_secret, digest_size=8
        ).digest()

    def _rrl_admit(self, packet: Packet) -> bool:
        """Token-bucket admission per client subnet (RRL)."""
        if self.rrl_limit <= 0:
            return True
        from ..netsim.addresses import subnet_of

        key = subnet_of(packet.src)  # type: ignore[arg-type]
        now = self.fabric.now if self.fabric else 0.0
        tokens, last = self._rrl_buckets.get(key, (self.rrl_limit, now))
        tokens = min(self.rrl_limit, tokens + (now - last) * self.rrl_limit)
        if tokens >= 1.0:
            self._rrl_buckets[key] = (tokens - 1.0, now)
            return True
        self._rrl_buckets[key] = (tokens, now)
        return False

    def _should_truncate(self, qname: Name) -> bool:
        return any(qname.is_subdomain_of(d) for d in self.truncation_domains)

    def _zone_for(self, qname: Name) -> Zone | None:
        best: Zone | None = None
        for origin, zone in self.zones.items():
            if qname.is_subdomain_of(origin):
                if best is None or len(origin) > len(best.origin):
                    best = zone
        return best
