"""Authoritative zone data with RFC 1034 lookup semantics.

A :class:`Zone` stores RRsets under an origin and answers the questions
an authoritative server needs answered: exact match, CNAME, delegation
(zone cut with glue), wildcard synthesis, NODATA, and NXDOMAIN (with the
SOA the negative response must carry).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from .name import Name
from .rr import RR, NS, SOA, RRType


class LookupKind(enum.Enum):
    """Outcome category of a zone lookup."""

    ANSWER = "answer"
    CNAME = "cname"
    REFERRAL = "referral"
    NODATA = "nodata"
    NXDOMAIN = "nxdomain"
    NOT_IN_ZONE = "not-in-zone"


@dataclass
class LookupResult:
    """Result of :meth:`Zone.lookup`, ready to fill response sections."""

    kind: LookupKind
    answers: list[RR] = field(default_factory=list)
    authority: list[RR] = field(default_factory=list)
    additional: list[RR] = field(default_factory=list)


class Zone:
    """One zone: origin, SOA, and RRsets keyed by (name, type)."""

    def __init__(self, origin: Name, soa: SOA, *, soa_ttl: int = 3600) -> None:
        self.origin = origin
        self._records: dict[tuple[Name, int], list[RR]] = defaultdict(list)
        self._names: set[Name] = {origin}
        self.add(RR(origin, RRType.SOA, 1, soa_ttl, soa))

    @property
    def soa_rr(self) -> RR:
        return self._records[(self.origin, RRType.SOA)][0]

    def add(self, rr: RR) -> RR:
        """Insert *rr*; the owner must be at or under the origin."""
        if not rr.name.is_subdomain_of(self.origin):
            raise ValueError(f"{rr.name} is outside zone {self.origin}")
        self._records[(rr.name, rr.rrtype)].append(rr)
        # Register the owner and every empty non-terminal above it.
        for ancestor in rr.name.ancestors():
            self._names.add(ancestor)
            if ancestor == self.origin:
                break
        return rr

    def rrset(self, owner: Name, rrtype: int) -> list[RR]:
        """Return the RRset at (*owner*, *rrtype*), possibly empty."""
        return list(self._records.get((owner, rrtype), ()))

    def remove_rrset(self, owner: Name, rrtype: int) -> int:
        """Delete the whole RRset at (*owner*, *rrtype*); return count.

        The SOA at the apex is never deletable (RFC 2136 §3.4.2.4).
        """
        if owner == self.origin and rrtype == RRType.SOA:
            return 0
        removed = self._records.pop((owner, rrtype), [])
        return len(removed)

    def remove_record(self, rr: RR) -> bool:
        """Delete one specific record (matched by owner/type/rdata)."""
        key = (rr.name, rr.rrtype)
        existing = self._records.get(key)
        if not existing:
            return False
        kept = [r for r in existing if r.rdata != rr.rdata]
        if len(kept) == len(existing):
            return False
        if kept:
            self._records[key] = kept
        else:
            del self._records[key]
        return True

    def names(self) -> set[Name]:
        """Return every name that exists in the zone (incl. non-terminals)."""
        return set(self._names)

    def record_count(self) -> int:
        return sum(len(rrs) for rrs in self._records.values())

    # -- lookup ----------------------------------------------------------

    def lookup(self, qname: Name, qtype: int) -> LookupResult:
        """Answer (*qname*, *qtype*) per RFC 1034 §4.3.2.

        Checks, in order: containment in the zone, a zone cut between the
        origin and the qname (referral), an exact-name match (answer,
        CNAME, or NODATA), a wildcard at the closest encloser, and
        finally NXDOMAIN.
        """
        if not qname.is_subdomain_of(self.origin):
            return LookupResult(LookupKind.NOT_IN_ZONE)

        referral = self._find_zone_cut(qname)
        if referral is not None:
            return referral

        if qname in self._names:
            return self._answer_existing(qname, qtype)

        wildcard_result = self._try_wildcard(qname, qtype)
        if wildcard_result is not None:
            return wildcard_result

        return LookupResult(
            LookupKind.NXDOMAIN, authority=[self.soa_rr]
        )

    def _find_zone_cut(self, qname: Name) -> LookupResult | None:
        """Return a referral if an NS RRset sits strictly below the origin
        on the path from the origin to *qname* (exclusive of qname when
        the query is for the cut's own NS set)."""
        # Walk from just below the origin down towards qname.
        path = [a for a in qname.ancestors()]
        path.reverse()  # root ... qname
        for node in path:
            if node == self.origin or not node.is_subdomain_of(self.origin):
                continue
            ns_set = self._records.get((node, RRType.NS))
            if ns_set:
                additional = self._glue_for(ns_set)
                return LookupResult(
                    LookupKind.REFERRAL,
                    authority=list(ns_set),
                    additional=additional,
                )
        return None

    def _glue_for(self, ns_set: list[RR]) -> list[RR]:
        glue: list[RR] = []
        for ns_rr in ns_set:
            assert isinstance(ns_rr.rdata, NS)
            target = ns_rr.rdata.target
            for rrtype in (RRType.A, RRType.AAAA):
                glue.extend(self._records.get((target, rrtype), ()))
        return glue

    def _answer_existing(self, qname: Name, qtype: int) -> LookupResult:
        exact = self._records.get((qname, qtype))
        if exact:
            return LookupResult(LookupKind.ANSWER, answers=list(exact))
        cname = self._records.get((qname, RRType.CNAME))
        if cname and qtype != RRType.CNAME:
            answers = list(cname)
            # Chase the alias inside this zone where possible.
            target = cname[0].rdata.target  # type: ignore[union-attr]
            if target.is_subdomain_of(self.origin):
                chased = self.lookup(target, qtype)
                if chased.kind is LookupKind.ANSWER:
                    answers.extend(chased.answers)
            return LookupResult(LookupKind.ANSWER, answers=answers)
        return LookupResult(LookupKind.NODATA, authority=[self.soa_rr])

    def _try_wildcard(self, qname: Name, qtype: int) -> LookupResult | None:
        """Synthesize from ``*.<closest encloser>`` if one exists."""
        for encloser in qname.parent().ancestors():
            if not encloser.is_subdomain_of(self.origin):
                break
            wildcard = encloser.child(b"*")
            if wildcard in self._names:
                exact = self._records.get((wildcard, qtype))
                if exact:
                    answers = [
                        RR(qname, rr.rrtype, rr.rrclass, rr.ttl, rr.rdata)
                        for rr in exact
                    ]
                    return LookupResult(LookupKind.ANSWER, answers=answers)
                return LookupResult(
                    LookupKind.NODATA, authority=[self.soa_rr]
                )
            if encloser in self._names:
                # Closest encloser exists without a wildcard: no synthesis
                # from higher wildcards is permitted (RFC 4592).
                return None
            if encloser == self.origin:
                break
        return None
