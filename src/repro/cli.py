"""Command-line interface: ``repro-dsav <command>``.

Subcommands:

* ``scan``   — run a full campaign and print every table of the paper.
* ``audit``  — the Section 6 "public testing tool" against one AS.
* ``lab``    — the controlled-lab artifacts (Tables 5/6, Figure 3a fit).
* ``attack`` — the exposure demonstrations (poisoning, NXNS, reflection).
* ``obs``    — render a run directory's ``telemetry.json`` (from
  ``scan --metrics``): span timings, counters, histograms.
* ``watch``  — live dashboard over a running (or finished) campaign's
  telemetry streams (from ``scan --snapshots``): per-shard rates and
  health, merged ``--json`` event stream, Prometheus textfile.
* ``explain`` — reconstruct per-probe causal chains from a run
  directory's ``events.ndjson`` (from ``scan --journal``), or audit
  that every classification is backed by journal evidence.
* ``ledger`` — index run directories into a cross-run ``ledger.json``
  (rows auto-appended by ``scan --ledger``; ``--rebuild`` re-derives
  the whole file from the run artifacts).
* ``diff``   — structural comparison of two run directories: per-AS
  DSAV flips with journal evidence, penetration-rate / drop-reason /
  telemetry deltas, with comparability gating.
* ``trend``  — longitudinal report over a ledger: per-AS flip
  timelines, metric trajectories, remediation vs whac-a-mole counts.

All commands are deterministic for a given ``--seed``.  Reports and
JSON go to stdout; progress and status chatter go to stderr (suppress
with ``--quiet``), so stdout stays machine-parseable.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .core import ScanConfig, resolver_ranges
from .scenarios import ScenarioParams, build_internet


def _banner(title: str) -> None:
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}")


#: Defaults for the scan flags that identify a campaign.  The argparse
#: defaults are ``None`` sentinels so ``--resume`` can tell "flag left
#: at its default" apart from "flag explicitly repeated" and refuse
#: flags that contradict the recorded spec.
_SCAN_DEFAULTS = {
    "seed": 2019,
    "n_ases": 120,
    "duration": 180.0,
    "shards": 1,
    "retries": 0,
    "topology": "star",
}


def _resume_mismatches(
    args: argparse.Namespace, faults_payload
) -> list[str]:
    """Explicitly-passed scan flags that contradict the recorded spec."""
    from .core.pipeline import RunDirectory

    rd = RunDirectory(args.resume)
    if not rd.manifest_path.exists():
        return []  # resume_pipeline reports the missing manifest
    spec = rd.read_spec()
    recorded = {
        "seed": spec.seed,
        "n_ases": spec.n_ases,
        "duration": spec.scan.get("duration"),
        "shards": spec.shards,
        "retries": spec.scan.get("max_retries", 0),
        "topology": "tiered" if spec.topology is not None else "star",
    }
    mismatches = [
        f"{name}: run has {recorded_value}, flag says "
        f"{getattr(args, name)}"
        for name, recorded_value in recorded.items()
        if getattr(args, name) is not None
        and getattr(args, name) != recorded_value
    ]
    if faults_payload is not None and faults_payload != spec.faults:
        mismatches.append(
            f"faults: run has "
            f"{'a different plan' if spec.faults else 'no fault plan'}, "
            f"flag says {args.faults}"
        )
    # store_true flags: only the explicit-True direction is detectable.
    if args.metrics and not spec.metrics:
        mismatches.append("metrics: run has False, flag says True")
    if args.journal and not spec.journal:
        mismatches.append("journal: run has False, flag says True")
    if args.snapshots and not spec.stream:
        mismatches.append("snapshots: run has False, flag says True")
    return mismatches


def cmd_scan(args: argparse.Namespace) -> int:
    import json as _json

    from .core.campaign import Campaign
    from .core.pipeline import PipelineError

    def status(message: str) -> None:
        # Status chatter goes to stderr so stdout carries only the
        # report / JSON and stays machine-parseable.
        if not args.quiet:
            print(message, file=sys.stderr)

    topology_payload = None
    if args.topology == "tiered":
        from .netsim.topology import TopologySpec

        topology_payload = TopologySpec().to_payload()

    faults_payload = None
    if args.faults is not None:
        from .netsim.faults import FaultPlan

        try:
            faults_payload = FaultPlan.load(args.faults).to_payload()
        except (OSError, ValueError) as exc:
            print(f"error: --faults {args.faults}: {exc}", file=sys.stderr)
            return 2

    if args.resume is not None:
        try:
            mismatches = _resume_mismatches(args, faults_payload)
        except PipelineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return exc.exit_code
        if mismatches:
            print(
                "error: --resume spec mismatch — "
                + "; ".join(mismatches)
                + " (drop the flag or start a fresh --run-dir)",
                file=sys.stderr,
            )
            return 2
    for name, default in _SCAN_DEFAULTS.items():
        if getattr(args, name) is None:
            setattr(args, name, default)

    if args.journal and args.resume is None and args.run_dir is None:
        print(
            "error: --journal requires --run-dir "
            "(events.ndjson needs somewhere to live)",
            file=sys.stderr,
        )
        return 2
    if args.snapshots and args.resume is None and args.run_dir is None:
        print(
            "error: --snapshots requires --run-dir "
            "(telemetry-stream-NNN.ndjson needs somewhere to live)",
            file=sys.stderr,
        )
        return 2
    if args.profile and args.resume is None and args.run_dir is None:
        print(
            "error: --profile requires --run-dir "
            "(profile-NNN.pstats needs somewhere to live)",
            file=sys.stderr,
        )
        return 2
    if args.ledger is not None and args.resume is None and args.run_dir is None:
        print(
            "error: --ledger requires --run-dir "
            "(the ledger indexes run artifacts on disk)",
            file=sys.stderr,
        )
        return 2

    progress = None
    if not args.quiet:
        from .obs.progress import ProgressReporter

        progress = ProgressReporter(
            total_shards=0 if args.resume is not None else args.shards
        )

    try:
        if args.resume is not None:
            from .core.pipeline import resume_pipeline

            outcome = resume_pipeline(
                args.resume, workers=args.workers, progress=progress,
                hang_timeout=args.hang_timeout,
                scenario_cache=args.scenario_cache,
                profile=args.profile,
                snapshot_interval=args.snapshot_interval,
                ledger=args.ledger,
            )
        elif (
            args.shards > 1
            or args.run_dir is not None
            or args.metrics
            or args.journal
            or args.snapshots
            or args.scenario_cache is not None
            or faults_payload is not None
            or topology_payload is not None
        ):
            from .core.pipeline import CampaignSpec, run_pipeline

            spec = CampaignSpec.from_scan_config(
                seed=args.seed,
                n_ases=args.n_ases,
                shards=args.shards,
                config=ScanConfig(
                    duration=args.duration, max_retries=args.retries
                ),
                metrics=args.metrics,
                journal=args.journal,
                stream=args.snapshots,
                faults=faults_payload,
                topology=topology_payload,
            )
            outcome = run_pipeline(
                spec, run_dir=args.run_dir, workers=args.workers,
                progress=progress, hang_timeout=args.hang_timeout,
                scenario_cache=args.scenario_cache,
                profile=args.profile,
                snapshot_interval=args.snapshot_interval,
                ledger=args.ledger,
            )
        else:
            campaign = Campaign.run_default(
                seed=args.seed, n_ases=args.n_ases,
                duration=args.duration,
                scan_config=ScanConfig(
                    duration=args.duration, max_retries=args.retries
                ),
                progress=progress,
            )
            if progress is not None:
                progress.finish()
            print(campaign.summary())
            print()
            print(campaign.full_report())
            from .core.paper import comparison_report

            _banner("Paper shape-claim verdicts")
            print(comparison_report(campaign))
            if args.json is not None:
                campaign.save_results(args.json)
                status(f"structured results written to {args.json}")
            return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except PipelineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code

    if progress is not None:
        progress.finish()
    if outcome.scenario_source == "cache":
        status("scenario served from the compiled-scenario cache")
    if outcome.stages_skipped:
        status(
            f"stages skipped (resumed): {', '.join(outcome.stages_skipped)}"
        )
    if outcome.stages_run:
        status(f"stages run: {', '.join(outcome.stages_run)}")
    if outcome.campaign is not None:
        print(outcome.campaign.summary())
    print()
    print(outcome.report)
    if outcome.campaign is not None:
        from .core.paper import comparison_report

        _banner("Paper shape-claim verdicts")
        print(comparison_report(outcome.campaign))
    else:
        print(
            "(analysis served from run-directory artifacts; "
            "paper-claim verdicts need a live campaign)"
        )
    if args.json is not None:
        from pathlib import Path

        Path(args.json).write_text(
            _json.dumps(outcome.results, indent=2)
        )
        status(f"structured results written to {args.json}")
    if outcome.telemetry is not None:
        from .obs.export import render_telemetry

        _banner("Campaign telemetry")
        print(render_telemetry(outcome.telemetry))
        if outcome.run_dir is not None:
            status(
                f"telemetry written to {outcome.run_dir}/telemetry.json"
            )
    if outcome.run_dir is not None:
        from pathlib import Path

        events = Path(outcome.run_dir) / "events.ndjson"
        if events.exists():
            status(f"probe journal written to {events}")
        if any(Path(outcome.run_dir).glob("telemetry-stream-*.ndjson")):
            status(
                f"telemetry streams in {outcome.run_dir} — replay with "
                f"`repro-dsav watch {outcome.run_dir}`"
            )
    if args.ledger is not None:
        status(
            f"run recorded in {args.ledger}/ledger.json — compare "
            f"epochs with `repro-dsav trend {args.ledger}`"
        )
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from .obs.export import (
        load_telemetry,
        obs_json_payload,
        payload_to_prometheus,
        render_telemetry,
    )

    path = Path(args.run_dir) / "telemetry.json"
    if not path.exists():
        print(
            f"error: {path} not found — run "
            f"`repro-dsav scan --metrics --run-dir {args.run_dir}` first",
            file=sys.stderr,
        )
        return 1
    try:
        payload = load_telemetry(path)
    except ValueError as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return 1
    if args.prom:
        print(payload_to_prometheus(payload), end="")
    elif args.json:
        print(_json.dumps(obs_json_payload(payload), indent=2))
    else:
        print(render_telemetry(payload))
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .obs.ledger import ObservatoryError, require_run_dir
    from .obs.watch import run_watch

    run_dir = Path(args.run_dir)
    try:
        require_run_dir(run_dir)
    except ObservatoryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    try:
        return run_watch(
            run_dir,
            json_mode=args.json,
            prom_textfile=args.prom_textfile,
            interval=args.interval,
            once=args.once,
            timeout=args.timeout,
        )
    except KeyboardInterrupt:
        return 130


def cmd_ledger(args: argparse.Namespace) -> int:
    from .obs.ledger import Ledger, ObservatoryError, render_ledger

    ledger = Ledger(args.ledger_dir)
    try:
        if args.rebuild:
            payload = ledger.rebuild()
            print(
                f"ledger rebuilt: {len(payload['rows'])} run(s) -> "
                f"{ledger.path}",
                file=sys.stderr,
            )
        else:
            payload = ledger.require()
    except ObservatoryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    if args.json:
        from .obs.export import dump_envelope

        print(dump_envelope(payload), end="")
    else:
        print(render_ledger(payload))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from .obs.diff import render_diff, run_diff
    from .obs.ledger import ObservatoryError

    try:
        envelope = run_diff(
            args.run_a, args.run_b, advisory=args.advisory
        )
    except ObservatoryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    if args.json:
        from .obs.export import dump_envelope

        print(dump_envelope(envelope), end="")
    else:
        text = render_diff(envelope)
        if text:
            print(text)
    return 0


def cmd_trend(args: argparse.Namespace) -> int:
    from .obs.ledger import ObservatoryError
    from .obs.trend import build_trend, render_trend

    try:
        envelope = build_trend(args.ledger_dir, metric=args.metric)
    except ObservatoryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    if args.json:
        from .obs.export import dump_envelope

        print(dump_envelope(envelope), end="")
    else:
        print(render_trend(envelope))
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    import json as _json

    from .campaigns import (
        CampaignError,
        CampaignPolicy,
        EvolutionPlan,
        campaign_status,
        render_status,
        resume_campaign,
        run_campaign,
    )
    from .core.pipeline import CampaignSpec, PipelineError
    from .obs.ledger import ObservatoryError

    def echo(message: str) -> None:
        if not getattr(args, "quiet", False):
            print(message, file=sys.stderr)

    try:
        if args.campaign_cmd == "status":
            payload = campaign_status(args.campaign_dir)
            if args.json:
                print(_json.dumps(payload, indent=2, sort_keys=True))
            else:
                print(render_status(payload))
            return 0
        if args.campaign_cmd == "resume":
            payload = resume_campaign(
                args.campaign_dir, workers=args.workers, echo=echo
            )
            print(render_status(payload))
            return 0
        try:
            plan = EvolutionPlan.load(args.plan)
        except (OSError, ValueError) as exc:
            print(f"error: --plan {args.plan}: {exc}", file=sys.stderr)
            return 2
        faults_payload = None
        if args.faults is not None:
            from .netsim.faults import FaultPlan

            try:
                faults_payload = FaultPlan.load(args.faults).to_payload()
            except (OSError, ValueError) as exc:
                print(
                    f"error: --faults {args.faults}: {exc}",
                    file=sys.stderr,
                )
                return 2
        topology_payload = None
        if args.topology == "tiered":
            from .netsim.topology import TopologySpec

            topology_payload = TopologySpec().to_payload()
        spec = CampaignSpec.from_scan_config(
            seed=args.seed,
            n_ases=args.n_ases,
            shards=args.shards,
            config=ScanConfig(duration=args.duration),
            partition=args.partition,
            faults=faults_payload,
            topology=topology_payload,
        )
        policy = CampaignPolicy(
            failure_policy=args.failure_policy,
            max_attempts=args.max_attempts,
            backoff=args.backoff,
            deadline=args.deadline,
            degrade_rate=args.degrade_rate,
            incremental=not args.no_incremental,
        )
        payload = run_campaign(
            spec,
            plan,
            args.epochs,
            args.campaign_dir,
            policy=policy,
            workers=args.workers,
            echo=echo,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (CampaignError, PipelineError, ObservatoryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    print(render_status(payload))
    echo(
        f"compare epochs with `repro-dsav trend {args.campaign_dir}` "
        f"or `repro-dsav diff {args.campaign_dir}/epoch-000 "
        f"{args.campaign_dir}/epoch-001`"
    )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from .obs.explain import (
        audit as journal_audit,
        load_index,
        render_asn_summary,
        render_narrative,
    )

    events_path = Path(args.run_dir) / "events.ndjson"
    if not events_path.exists():
        print(
            f"error: {events_path} not found — run "
            f"`repro-dsav scan --journal --run-dir {args.run_dir}` first",
            file=sys.stderr,
        )
        return 1
    index = load_index(events_path)

    if args.audit:
        results_path = Path(args.run_dir) / "results.json"
        results = (
            _json.loads(results_path.read_text())
            if results_path.exists()
            else None
        )
        problems = journal_audit(index, results)
        if problems:
            for problem in problems:
                print(f"audit: {problem}", file=sys.stderr)
            print(
                f"audit FAILED: {len(problems)} problem(s)",
                file=sys.stderr,
            )
            return 1
        checked = len(index.classifications)
        suffix = (
            ", headline counts match results.json"
            if results is not None
            else ""
        )
        print(
            f"audit OK: {checked} classifications backed by "
            f"journal evidence{suffix}"
        )
        return 0

    if args.asn is not None:
        if args.json:
            chains = [
                index.chain(pid) for pid in index.probes_for_asn(args.asn)
            ]
            print(_json.dumps(chains, indent=2))
        else:
            print(render_asn_summary(index, args.asn))
        return 0

    if args.probe is not None:
        pid = args.probe
    elif args.qname is not None:
        pid = index.probe_for_qname(args.qname)
        if pid is None:
            print(
                f"error: qname {args.qname} not in journal",
                file=sys.stderr,
            )
            return 1
    else:
        print(
            "error: choose one of --probe, --qname, --asn, --audit",
            file=sys.stderr,
        )
        return 2

    chain = index.chain(pid)
    if chain is None:
        print(f"error: probe {pid} not in journal", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(chain, indent=2))
    else:
        print(render_narrative(chain))
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from .attacks import expected_windows
    from .core.targets import TargetSet
    from .fingerprint.p0f import P0fDatabase

    scenario = build_internet(
        ScenarioParams(seed=args.seed, n_ases=args.n_ases)
    )
    if args.asn is None:
        counts: dict[int, int] = {}
        for info in scenario.truth.resolvers:
            if info.alive and info.asn in scenario.truth.dsav_lacking_asns:
                counts[info.asn] = counts.get(info.asn, 0) + 1
        if not counts:
            print("no auditable AS in this scenario")
            return 1
        args.asn = max(counts, key=counts.get)  # type: ignore[arg-type]
    full = scenario.target_set()
    scoped = TargetSet(
        targets=[t for t in full.targets if t.asn == args.asn],
        stats=full.stats,
    )
    print(f"Auditing AS{args.asn}: {len(scoped)} candidate resolvers")
    scanner, collector = scenario.make_scanner(
        ScanConfig(duration=60.0), targets=scoped
    )
    scanner.run()
    reachable = collector.reachable_targets()
    if not reachable:
        print("verdict: no spoofed-source infiltration observed")
        return 0
    print(f"verdict: DSAV ABSENT — {len(reachable)} resolver(s) reached")
    ranges = {
        r.observation.target: r
        for r in resolver_ranges(collector, P0fDatabase.default())
    }
    for obs in sorted(reachable, key=lambda o: str(o.target)):
        line = (
            f"  {obs.target}: "
            f"{'open' if obs.open_ else 'closed'}, "
            f"categories={{{','.join(sorted(c.value for c in obs.categories))}}}"
        )
        item = ranges.get(obs.target)
        if item is not None:
            line += f", port-range={item.range} ({item.bucket.label})"
            if item.range == 0:
                cost = expected_windows(1, 65536)
                line += f" *** poisonable in ~{cost:.0f} race window"
        elif obs.forwarded:
            line += ", forwards upstream"
        print(line)
    return 0


def cmd_lab(args: argparse.Namespace) -> int:
    from .oskernel.profiles import SOFTWARE_PROFILES
    from .scenarios.lab import lab_port_study, os_acceptance_matrix

    _banner("Table 5: port pools per software")
    for result in lab_port_study(n_queries=args.queries):
        profile = SOFTWARE_PROFILES.get(result.software)
        print(
            f"{result.os_name:>16} / {result.software:<26} "
            f"distinct={result.distinct_ports:<6} "
            f"span={result.pool_span:<6} "
            f"[{profile.pool_description if profile else 'custom'}]"
        )
    _banner("Table 6: spoofed-local packet acceptance")
    for row in os_acceptance_matrix():
        marks = "".join(
            "x" if flag else "-"
            for flag in (row.ds_v4, row.lb_v4, row.ds_v6, row.lb_v6)
        )
        print(f"{row.os_name:>18}  DS4/LB4/DS6/LB6 = {marks}")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    from .attacks import (
        build_nxns_world,
        build_reflection_world,
        guess_space,
        run_nxns_attack,
        run_reflection_attack,
    )

    if args.kind in ("nxns", "all"):
        _banner("NXNS amplification")
        unpatched = run_nxns_attack(
            build_nxns_world(fanout=30, max_glueless_ns=50)
        )
        patched = run_nxns_attack(
            build_nxns_world(fanout=30, max_glueless_ns=2)
        )
        print(
            f"unpatched resolver: x{unpatched.amplification:.0f} "
            f"victim queries per trigger; NXNS-patched: "
            f"x{patched.amplification:.0f}"
        )
    if args.kind in ("reflection", "all"):
        _banner("Reflection / RRL")
        open_ = run_reflection_attack(build_reflection_world(), queries=40)
        limited = run_reflection_attack(
            build_reflection_world(rrl_limit=2.0), queries=40
        )
        print(
            f"no RRL: x{open_.amplification:.1f} byte amplification; "
            f"RRL 2/s: x{limited.amplification:.1f}"
        )
    if args.kind in ("poisoning", "all"):
        _banner("Poisoning search space")
        for label, pool in (("fixed port", 1), ("Windows DNS", 2500),
                            ("Linux", 28232), ("full range", 64511)):
            print(f"{label:>12}: {guess_space(pool):,} combinations")
    if args.kind in ("zone", "all"):
        _banner("Zone poisoning via spoofed dynamic update")
        from ipaddress import ip_address as _ip

        from .attacks.zone_poisoning import (
            build_zone_poisoning_world,
            spoofed_zone_update,
        )

        for dsav in (False, True):
            world = build_zone_poisoning_world(dsav=dsav)
            result = spoofed_zone_update(
                world.fabric, world.attacker, world.server,
                world.server_address, world.zone_origin,
                spoofed_source=_ip("30.0.44.44"),
                victim_owner=world.victim_owner,
                malicious_address=_ip("66.6.6.6"),
            )
            label = "with DSAV" if dsav else "without DSAV"
            print(
                f"{label}: update "
                f"{'ACCEPTED - zone rewritten' if result.poisoned else 'blocked'}"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dsav",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="full campaign + all tables")
    # Campaign-identity flags default to None sentinels (resolved to
    # _SCAN_DEFAULTS in cmd_scan) so --resume can detect explicit
    # flags that contradict the recorded spec.
    scan.add_argument("--n-ases", type=int, default=None)
    scan.add_argument("--seed", type=int, default=None)
    scan.add_argument("--duration", type=float, default=None)
    scan.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write structured results as JSON",
    )
    scan.add_argument(
        "--shards", type=int, default=None,
        help="partition target ASes across this many scan worker "
        "processes; results are byte-identical to --shards 1",
    )
    scan.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retransmit unanswered probes up to N times with "
        "exponential backoff (default 0: single-shot probes, "
        "byte-identical to earlier releases)",
    )
    scan.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="inject the deterministic fault plan (JSON, see "
        "examples/faultplans/) into the packet fabric; stored as "
        "faults.json in the run directory",
    )
    scan.add_argument(
        "--topology", choices=("star", "tiered"), default=None,
        help="inter-AS topology: 'star' (default) keeps the legacy "
        "hub-and-spoke fabric, 'tiered' builds a policy-aware AS "
        "graph with valley-free routing and per-hop border filtering",
    )
    scan.add_argument(
        "--hang-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and re-execute a scan shard worker whose heartbeat "
        "goes stale this long (default: no hang detection)",
    )
    scan.add_argument(
        "--workers", type=int, default=None,
        help="max shard worker processes (default: one per shard, "
        "capped at CPU count; 0 runs shards inline)",
    )
    scan.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="persist stage artifacts (shard scans, merged "
        "observations, results, report) into DIR",
    )
    scan.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume the campaign recorded in DIR's manifest, "
        "skipping stages whose artifacts already exist",
    )
    scan.add_argument(
        "--metrics", action="store_true",
        help="collect campaign telemetry (metrics + span traces); "
        "written to telemetry.json when --run-dir is set.  Results "
        "are byte-identical with or without this flag",
    )
    scan.add_argument(
        "--journal", action="store_true",
        help="record the per-probe event journal (flight recorder) to "
        "events.ndjson in --run-dir; explore it with `repro-dsav "
        "explain`.  Results are byte-identical with or without this "
        "flag",
    )
    scan.add_argument(
        "--snapshots", action="store_true",
        help="stream periodic telemetry snapshots (shard health + "
        "metric deltas) to telemetry-stream-NNN.ndjson in --run-dir; "
        "tail them live with `repro-dsav watch`.  Results are "
        "byte-identical with or without this flag",
    )
    scan.add_argument(
        "--snapshot-interval", type=float, default=1.0,
        metavar="SECONDS",
        help="wall-clock seconds between telemetry snapshots "
        "(default 1.0; only meaningful with --snapshots)",
    )
    scan.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="after the run completes, append (or refresh) its row in "
        "DIR/ledger.json — the cross-run index `repro-dsav diff` and "
        "`repro-dsav trend` consume.  Requires --run-dir; results are "
        "byte-identical with or without it",
    )
    scan.add_argument(
        "--scenario-cache", default=None, metavar="DIR",
        help="content-keyed cache of compiled scenarios: a repeated "
        "run of the same spec loads the built world from DIR instead "
        "of rebuilding it (also honoured via $REPRO_SCENARIO_CACHE).  "
        "Results are byte-identical with or without a cache hit",
    )
    scan.add_argument(
        "--profile", action="store_true",
        help="dump per-shard cProfile stats to profile-NNN.pstats in "
        "the run directory (requires --run-dir or --resume)",
    )
    scan.add_argument(
        "--quiet", action="store_true",
        help="suppress the live progress line and status chatter "
        "(stderr); stdout output is unaffected",
    )
    scan.set_defaults(func=cmd_scan)

    obs = sub.add_parser(
        "obs", help="render a run directory's telemetry.json"
    )
    obs.add_argument("run_dir", metavar="RUN_DIR")
    obs.add_argument(
        "--prom", action="store_true",
        help="emit Prometheus text exposition format instead of the "
        "human-readable summary",
    )
    obs.add_argument(
        "--json", action="store_true",
        help="emit the telemetry payload as JSON, extended with "
        "derived histogram percentile summaries (p50/p95/p99)",
    )
    obs.set_defaults(func=cmd_obs)

    watch = sub.add_parser(
        "watch",
        help="live dashboard over a run's telemetry streams "
        "(scan --snapshots)",
    )
    watch.add_argument("run_dir", metavar="RUN_DIR")
    watch.add_argument(
        "--json", action="store_true",
        help="emit the merged event stream as NDJSON on stdout "
        "instead of the dashboard",
    )
    watch.add_argument(
        "--prom-textfile", default=None, metavar="PATH",
        help="continuously rewrite PATH with the run's accumulated "
        "metrics in Prometheus text format (node-exporter textfile "
        "collector compatible)",
    )
    watch.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="poll/redraw interval (default 1.0)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="render (or emit) the current state once and exit — "
        "replays the full stream of a finished run",
    )
    watch.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="exit 2 if no stream events appear within SECONDS on a "
        "run that is not finished",
    )
    watch.set_defaults(func=cmd_watch)

    ledger = sub.add_parser(
        "ledger",
        help="index run directories into a cross-run ledger.json",
    )
    ledger.add_argument("ledger_dir", metavar="LEDGER_DIR")
    ledger.add_argument(
        "--rebuild", action="store_true",
        help="re-derive every row by scanning LEDGER_DIR's run "
        "subdirectories; byte-identical to incremental --ledger "
        "appends over the same runs",
    )
    ledger.add_argument(
        "--json", action="store_true",
        help="emit the ledger payload as canonical JSON",
    )
    ledger.set_defaults(func=cmd_ledger)

    diff = sub.add_parser(
        "diff",
        help="structural diff between two run directories",
    )
    diff.add_argument("run_a", metavar="RUN_A")
    diff.add_argument("run_b", metavar="RUN_B")
    diff.add_argument(
        "--json", action="store_true",
        help="emit the versioned diff envelope as canonical JSON "
        "instead of the human rendering",
    )
    diff.add_argument(
        "--advisory", action="store_true",
        help="compare runs with different scenario/topology keys "
        "anyway, downgrading the envelope to advisory instead of "
        "refusing (exit 2)",
    )
    diff.set_defaults(func=cmd_diff)

    campaign = sub.add_parser(
        "campaign",
        help="crash-anywhere longitudinal campaigns: one evolved "
        "scenario per epoch, driven by a write-ahead schedule",
    )
    campaign_sub = campaign.add_subparsers(
        dest="campaign_cmd", required=True
    )
    camp_run = campaign_sub.add_parser(
        "run",
        help="run a longitudinal campaign: N epochs of an evolving "
        "scenario into one campaign/ledger directory",
    )
    camp_run.add_argument("campaign_dir", metavar="DIR")
    camp_run.add_argument(
        "--plan", required=True, metavar="FILE",
        help="evolution plan JSON (see examples/evolution/) — per-"
        "epoch resolver churn, SAV remediation/regression, software "
        "drift, address reassignment",
    )
    camp_run.add_argument(
        "--epochs", type=int, required=True, metavar="N",
        help="number of epochs to schedule",
    )
    camp_run.add_argument("--seed", type=int, default=2019)
    camp_run.add_argument("--n-ases", type=int, default=120)
    camp_run.add_argument(
        "--duration", type=float, default=180.0, metavar="SECONDS",
        help="simulated scan duration per epoch",
    )
    camp_run.add_argument("--shards", type=int, default=1)
    camp_run.add_argument(
        "--partition", choices=("weighted", "modulo"), default="weighted",
        help="shard partition scheme; 'modulo' keeps shard membership "
        "stable across epochs, maximizing incremental-rescan reuse",
    )
    camp_run.add_argument(
        "--topology", choices=("star", "tiered"), default="star",
    )
    camp_run.add_argument(
        "--faults", default=None, metavar="FILE",
        help="fault plan applied to every epoch (reseeded per epoch "
        "by any fault-cycle clause in the evolution plan)",
    )
    camp_run.add_argument("--workers", type=int, default=None)
    camp_run.add_argument(
        "--failure-policy", choices=("abort", "skip"), default="abort",
        help="what to do when an epoch exhausts its attempts: abort "
        "the campaign (resumable) or mark it skipped and continue",
    )
    camp_run.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts per epoch before the failure policy applies",
    )
    camp_run.add_argument(
        "--backoff", type=float, default=0.0, metavar="SECONDS",
        help="base retry delay, doubled per attempt",
    )
    camp_run.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget: once exceeded, later epochs degrade "
        "to a deterministic sampled-AS subset instead of running full "
        "(recorded in schedule and provenance)",
    )
    camp_run.add_argument(
        "--degrade-rate", type=float, default=0.25, metavar="RATE",
        help="fraction of ASes a degraded epoch still scans",
    )
    camp_run.add_argument(
        "--no-incremental", action="store_true",
        help="disable the content-keyed shard cache (every epoch "
        "re-executes every shard)",
    )
    camp_run.add_argument("--quiet", action="store_true")
    camp_run.set_defaults(func=cmd_campaign)
    camp_resume = campaign_sub.add_parser(
        "resume",
        help="resume a crashed or aborted campaign from its "
        "write-ahead schedule",
    )
    camp_resume.add_argument("campaign_dir", metavar="DIR")
    camp_resume.add_argument("--workers", type=int, default=None)
    camp_resume.add_argument("--quiet", action="store_true")
    camp_resume.set_defaults(func=cmd_campaign)
    camp_status = campaign_sub.add_parser(
        "status",
        help="show a campaign's schedule, per-epoch digests, and "
        "ledger digest",
    )
    camp_status.add_argument("campaign_dir", metavar="DIR")
    camp_status.add_argument(
        "--json", action="store_true",
        help="emit the status payload as JSON",
    )
    camp_status.set_defaults(func=cmd_campaign)

    trend = sub.add_parser(
        "trend",
        help="longitudinal flip timelines and metric trajectories "
        "over a ledger",
    )
    trend.add_argument("ledger_dir", metavar="LEDGER_DIR")
    trend.add_argument(
        "--metric", default="asn-rate-v4",
        help="ledger stat to plot per lineage (default asn-rate-v4; "
        "see repro.obs.trend.METRIC_PATHS for choices)",
    )
    trend.add_argument(
        "--json", action="store_true",
        help="emit the versioned trend envelope as canonical JSON",
    )
    trend.set_defaults(func=cmd_trend)

    explain = sub.add_parser(
        "explain",
        help="reconstruct per-probe causal chains from events.ndjson",
    )
    explain.add_argument("run_dir", metavar="RUN_DIR")
    selector = explain.add_mutually_exclusive_group()
    selector.add_argument(
        "--probe", default=None, metavar="ID",
        help="explain one probe by its 16-hex-digit id",
    )
    selector.add_argument(
        "--qname", default=None, metavar="NAME",
        help="explain the probe that sent this experiment query name",
    )
    selector.add_argument(
        "--asn", type=int, default=None,
        help="summarize every probe sent toward this target AS",
    )
    selector.add_argument(
        "--audit", action="store_true",
        help="verify every classification is backed by journal "
        "evidence and headline counts match results.json; exit 1 on "
        "orphans",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of the narrative",
    )
    explain.set_defaults(func=cmd_explain)

    audit = sub.add_parser("audit", help="audit one AS")
    audit.add_argument("--asn", type=int, default=None)
    audit.add_argument("--n-ases", type=int, default=80)
    audit.add_argument("--seed", type=int, default=1234)
    audit.set_defaults(func=cmd_audit)

    lab = sub.add_parser("lab", help="controlled-lab artifacts")
    lab.add_argument("--queries", type=int, default=10_000)
    lab.set_defaults(func=cmd_lab)

    attack = sub.add_parser("attack", help="exposure demonstrations")
    attack.add_argument(
        "kind",
        choices=("poisoning", "nxns", "reflection", "zone", "all"),
        default="all",
        nargs="?",
    )
    attack.set_defaults(func=cmd_attack)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (head, jq -e …) closed stdout; that is a
        # normal way to stop reading any of our output.  Detach stdout
        # so the interpreter's exit-time flush doesn't error again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
