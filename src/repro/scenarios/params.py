"""Scenario parameters and resolver population mix.

The defaults are calibrated so a synthetic scan reproduces the *shape*
of the paper's findings: roughly half of ASes lack DSAV (with the
per-country skew of Tables 1-2), ~40% of reached resolvers are open,
Windows DNS resolvers are overwhelmingly open (89% in the paper), a
small population pins a single source port (port 53 ahead of 32768,
Section 5.2.1), a sliver uses tiny sequential pools (Section 5.2.3),
and most TCP SYNs defeat p0f (90% unclassified, Section 5.3.1).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from random import Random

from ..netsim.topology import TopologySpec
from ..oskernel.ports import FixedPortAllocator, IncrementingAllocator, PortAllocator
from ..oskernel.profiles import OSProfile, SOFTWARE_PROFILES, os_profile

#: Per-country multiplier applied to the base DSAV-lacking probability,
#: shaping Tables 1 and 2: the US sits well below average, Brazil /
#: Russia / Ukraine above, and the small "high exposure" countries
#: (Algeria, Morocco, ...) highest of all.
COUNTRY_DSAV_BIAS: dict[str, float] = {
    "US": 0.55,
    "DE": 0.70,
    "GB": 0.65,
    "CA": 0.70,
    "AU": 0.65,
    "BR": 1.15,
    "RU": 1.15,
    "UA": 1.25,
    "PL": 1.0,
    "IN": 0.8,
    "DZ": 1.35,
    "MA": 1.30,
    "SZ": 1.6,
    "BZ": 1.2,
    "BF": 1.25,
    "XK": 1.2,
    "BA": 1.1,
    "SC": 1.2,
    "WF": 1.9,
    "CI": 1.1,
}

#: Countries where reached networks expose a larger share of their
#: addresses (the Table 2 phenomenon): multiplier on per-resolver
#: acceptance odds (higher open rate, wider ACLs).
COUNTRY_EXPOSURE_BIAS: dict[str, float] = {
    "DZ": 3.0, "MA": 2.5, "SZ": 2.2, "BZ": 2.0, "BF": 2.0,
    "XK": 1.8, "BA": 1.6, "SC": 1.6, "WF": 1.8, "CI": 1.5,
    "RU": 1.5, "UA": 1.6, "IN": 1.5,
}

AllocatorFactory = Callable[[OSProfile, Random], PortAllocator]


def _software(name: str) -> AllocatorFactory:
    profile = SOFTWARE_PROFILES[name]
    return profile.allocator


def _fixed(port: int) -> AllocatorFactory:
    return lambda os_prof, rng: FixedPortAllocator(port)


def _incrementing_small() -> AllocatorFactory:
    def build(os_prof: OSProfile, rng: Random) -> PortAllocator:
        low = 2000 + rng.randrange(4000)
        span = 20 + rng.randrange(180)
        start = low + rng.randrange(span)
        return IncrementingAllocator(low, low + span, start=start)

    return build


def _tight_small_pool() -> AllocatorFactory:
    """A handful of ports inside a narrow band: the Section 5.2.3 case
    where 10 queries show seven or fewer distinct ports — vanishingly
    unlikely if the pool really spanned its observed range."""

    def build(os_prof: OSProfile, rng: Random) -> PortAllocator:
        from ..oskernel.ports import SmallSetAllocator

        low = 2000 + rng.randrange(4000)
        ports = rng.sample(range(low, low + 150), 5)
        return SmallSetAllocator(ports, rng)

    return build


@dataclass(frozen=True, slots=True)
class ResolverKind:
    """One entry of the resolver population mix."""

    key: str
    os_name: str
    software: str
    allocator: AllocatorFactory
    weight: float
    open_probability: float
    #: probability the SYN signature is perturbed beyond p0f's database
    fuzz_probability: float = 0.6

    @property
    def os(self) -> OSProfile:
        return os_profile(self.os_name)

    def __reduce__(self):
        # Allocator factories are closures; kinds pickle by key against
        # the registry built from RESOLVER_MIX below (scenario artifacts
        # reference population-mix entries, never carry their code).
        return (_resolver_kind, (self.key,))


#: The population mix.  Weights are relative; the rare fixed-port and
#: sequential kinds are oversampled ~2.5x relative to the paper's wild
#: population so small scenarios still populate the Section 5.2 tails
#: (the *ratios within* those tails match the paper).  Open
#: probabilities encode
#: the paper's open/closed correlations per bucket (Table 4): FreeBSD
#: and Linux pools are mostly closed, Windows DNS pools mostly open.
RESOLVER_MIX: tuple[ResolverKind, ...] = (
    ResolverKind(
        "linux-bind-modern", "ubuntu-modern", "bind-9.9.13-9.16.0",
        _software("bind-9.9.13-9.16.0"), 24.0, 0.04, 0.85,
    ),
    ResolverKind(
        "linux-knot", "ubuntu-modern", "knot-3.2.1",
        _software("knot-3.2.1"), 5.0, 0.10, 0.85,
    ),
    ResolverKind(
        "linux-unbound", "ubuntu-modern", "unbound-1.9.0",
        _software("unbound-1.9.0"), 26.0, 0.06, 0.85,
    ),
    ResolverKind(
        "linux-powerdns", "ubuntu-modern", "powerdns-recursor-4.2.0",
        _software("powerdns-recursor-4.2.0"), 15.0, 0.07, 0.85,
    ),
    ResolverKind(
        "linux-old-bind-full", "ubuntu-old", "bind-9.5.2-9.8.8",
        _software("bind-9.5.2-9.8.8"), 10.0, 0.10, 0.75,
    ),
    ResolverKind(
        "freebsd-bind", "freebsd", "bind-9.9.13-9.16.0",
        _software("bind-9.9.13-9.16.0"), 10.0, 0.10, 0.80,
    ),
    ResolverKind(
        "windows-dns-modern", "windows-2008r2+", "windows-dns-2008r2-2019",
        _software("windows-dns-2008r2-2019"), 11.0, 0.89, 0.11,
    ),
    ResolverKind(
        "windows-dns-2003", "windows-2003", "windows-dns-2003-2008",
        _software("windows-dns-2003-2008"), 1.0, 0.45, 0.15,
    ),
    ResolverKind(
        "bind-pinned-53", "ubuntu-old", "bind-query-source-pinned",
        _fixed(53), 1.5, 0.35, 0.80,
    ),
    ResolverKind(
        "baidu-crawler", "baidu-spider", "bind-pre-8.1",
        _fixed(53), 1.0, 0.55, 0.05,
    ),
    ResolverKind(
        "linux-pinned-32768", "ubuntu-old", "bind-query-source-pinned",
        _fixed(32768), 0.6, 0.40, 0.80,
    ),
    ResolverKind(
        "linux-pinned-32769", "ubuntu-modern", "bind-query-source-pinned",
        _fixed(32769), 0.2, 0.40, 0.85,
    ),
    ResolverKind(
        "bind-950-small-set", "ubuntu-old", "bind-9.5.0",
        _software("bind-9.5.0"), 0.4, 0.35, 0.80,
    ),
    ResolverKind(
        "windows-sequential", "windows-2008r2+", "custom-sequential",
        _incrementing_small(), 0.9, 0.80, 0.30,
    ),
    ResolverKind(
        "embedded-sequential", "generic-embedded", "custom-sequential",
        _incrementing_small(), 0.45, 0.80, 0.05,
    ),
    ResolverKind(
        "embedded-tight-pool", "generic-embedded", "custom-small-pool",
        _tight_small_pool(), 0.70, 0.75, 0.05,
    ),
)


_KIND_REGISTRY: dict[str, ResolverKind] = {}


def _resolver_kind(key: str) -> ResolverKind:
    """Resolve a pickled :class:`ResolverKind` back to its registry entry."""
    try:
        return _KIND_REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"resolver kind {key!r} is not registered; the artifact was "
            "built against a different resolver mix"
        ) from None


_KIND_REGISTRY.update((kind.key, kind) for kind in RESOLVER_MIX)


@dataclass
class ScenarioParams:
    """Knobs of the synthetic Internet."""

    seed: int = 1
    n_ases: int = 220
    #: fraction of ASes announcing IPv6 space (paper: ~15% of ASes).
    v6_as_fraction: float = 0.20
    #: base probability an AS lacks DSAV (modulated per country).
    dsav_lacking_rate: float = 0.68
    #: among DSAV-lacking ASes, probability inbound martians also pass.
    martian_unfiltered_rate: float = 0.18
    #: among DSAV-lacking ASes, probability the access layer runs
    #: IP Source Guard somewhere: inbound IPv4 packets spoofing the
    #: destination's own /24 are dropped on protected segments,
    #: suppressing same-prefix and dst-as-src hits.
    subnet_sav_v4_rate: float = 0.22
    #: fraction of a source-guarding AS's /24s actually protected
    #: (deployment is per access segment, not AS-wide).
    subnet_sav_coverage: float = 0.70
    #: fraction of in-flight packets lost (rate limiting, transient
    #: congestion).  Together with the per-segment source-guard and
    #: server-farm ACLs, this is what makes 97 other-prefix attempts
    #: beat a single same-prefix attempt in Table 3, as in the paper.
    packet_loss_rate: float = 0.10
    #: probability an AS performs OSAV (irrelevant to targets; realism).
    osav_rate: float = 0.75
    #: mean resolver count per AS (geometric-ish skew).
    mean_resolvers_per_as: float = 6.0
    #: fraction of DITL candidate addresses with no live resolver at scan
    #: time (churn, monitoring boxes, spoofed trace sources; the paper's
    #: 95% non-responding majority — scaled down so the synthetic scan
    #: keeps a usable reachable population at small sizes).
    dead_address_rate: float = 0.60
    #: resolver ACL shape among closed resolvers.
    acl_as_wide_rate: float = 0.45
    acl_subnet_only_rate: float = 0.15
    acl_narrow_rate: float = 0.30
    # remainder: ACL admits no address we can spoof ("external-only").
    #: fraction of AS-wide ACLs that *exclude* the server's own subnet
    #: (server-farm configurations serving clients elsewhere).  This is
    #: what keeps the same-prefix category below other-prefix in
    #: Table 3, as the paper observed (63% vs 78%).
    acl_exclude_own_subnet_rate: float = 0.92
    #: of narrow ACLs, fraction that cover other corporate subnets but
    #: exclude the resolver's own (infrastructure segments serving
    #: client segments): rejects same-prefix and dst-as-src sources at
    #: the *resolver* level while other-prefix still lands, keeping the
    #: per-AS same-prefix coverage high (91% in Table 3's ASN column)
    #: while per-address coverage sits at 63%.
    acl_narrow_exclude_own_rate: float = 0.90
    #: forwarding rates per family (Section 5.4: 47% v4, 16% v6).
    forwarder_rate_v4: float = 0.42
    forwarder_rate_v6: float = 0.15
    #: of forwarders, fraction forwarding to an in-AS central resolver
    #: (the rest use a public DNS service).
    forward_to_central_rate: float = 0.70
    #: open probability for forwarding targets (CPE gear is routinely
    #: open; this is what pushes the overall open rate toward the
    #: paper's 40% while direct responders stay ~10% open, Table 4).
    forwarder_open_rate: float = 0.65
    #: QNAME minimization deployment (Section 3.6.4).
    qmin_rate: float = 0.10
    qmin_strict_fraction: float = 0.55
    #: fraction of resolvers that are dual-stack when their AS has IPv6.
    dual_stack_rate: float = 0.55
    #: of v6-capable resolvers, fraction with no IPv4 presence at all.
    v6_only_rate: float = 0.10
    #: fraction of live resolvers that never queried the roots during
    #: the collection window and hence are missing from the DITL-style
    #: candidate list.  A whole-address-space scan (Korczynski et al.)
    #: still finds them — the "sheer breadth" advantage of Section 2.
    not_in_ditl_rate: float = 0.08
    #: DITL trace pollution (Section 3.1 exclusions).
    special_purpose_candidates: int = 30
    unrouted_candidates: int = 12
    #: human-intervention modelling (Section 3.6.3).
    ids_as_fraction: float = 0.03
    analyst_probability: float = 0.02
    analyst_delay_min: float = 30.0
    analyst_delay_max: float = 600.0
    #: historical (2018-DITL-style) port trace shape (Section 5.2.2).
    history_stable_rate: float = 0.51
    history_regressed_rate: float = 0.25
    resolver_mix: tuple[ResolverKind, ...] = RESOLVER_MIX
    country_dsav_bias: dict[str, float] = field(
        default_factory=lambda: dict(COUNTRY_DSAV_BIAS)
    )
    country_exposure_bias: dict[str, float] = field(
        default_factory=lambda: dict(COUNTRY_EXPOSURE_BIAS)
    )
    #: policy-aware AS topology (see :mod:`repro.netsim.topology`).
    #: ``None`` keeps the legacy star wiring — every inter-AS packet
    #: crosses exactly the origin and destination borders — and stays
    #: byte-identical to scenarios built before the topology engine.
    topology: TopologySpec | None = None
    #: longitudinal evolution payload ``{"plan": <EvolutionPlan
    #: payload>, "epoch": N}`` (see :mod:`repro.campaigns.evolution`).
    #: ``None`` — the default for every non-campaign scan — is omitted
    #: from the content-key payload entirely, so legacy scenario keys
    #: (and the CI-pinned star hash) are untouched.
    evolution: dict | None = None

    def __post_init__(self) -> None:
        if self.evolution is not None:
            from ..campaigns.evolution import validate_evolution_payload

            validate_evolution_payload(self.evolution)
        if self.topology is not None and not isinstance(
            self.topology, TopologySpec
        ):
            raise ValueError(
                f"topology must be a TopologySpec or None, "
                f"got {self.topology!r}"
            )
        if self.n_ases < 3:
            raise ValueError("need at least 3 ASes")
        if not 0 <= self.dsav_lacking_rate <= 1:
            raise ValueError("dsav_lacking_rate must be a probability")
