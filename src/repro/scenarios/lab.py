"""Controlled lab environments (Sections 5.3.2, 5.3.3, 5.5).

The paper validated its models against lab installations: 10,000
recursive queries per OS/software combination to observe port pools
(Figure 3a, Table 5), and spoofed-local packet injections to map kernel
acceptance (Table 6).  This module re-creates both:

* :func:`sample_allocator_ports` / :func:`lab_port_study` — fast draws
  straight from a combination's allocator, the statistical equivalent of
  the 10,000-query experiment.
* :func:`run_resolution_port_study` — the end-to-end variant: a real
  resolver in a tiny fabric resolving unique names against a lab
  authoritative server, ports observed at the server.  Slower; used to
  validate that the fast path measures the same thing.
* :func:`os_acceptance_matrix` / :func:`run_acceptance_lab` — Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from ipaddress import ip_address
from random import Random

from ..dns.auth import AuthoritativeServer
from ..dns.name import ROOT, name
from ..dns.resolver import AccessControl, RecursiveResolver
from ..dns.rr import A, NS, RR, SOA, RRType, TXT
from ..dns.stub import StubResolver
from ..dns.zone import Zone
from ..fingerprint.portrange import SAMPLE_SIZE
from ..netsim.addresses import LOOPBACK_V4, LOOPBACK_V6, Address
from ..netsim.autonomous_system import AutonomousSystem
from ..netsim.fabric import Fabric
from ..netsim.packet import Packet, Transport
from ..oskernel.ports import PortAllocator, observed_range
from ..oskernel.profiles import (
    OS_PROFILES,
    OSProfile,
    os_profile,
    software_profile,
)
from ..oskernel.stack import NetworkStack

#: The OS/software combinations of the paper's port study (Section 5.3.2
#: and Table 5), each tagged with the pool it is expected to use.
LAB_COMBINATIONS: tuple[tuple[str, str], ...] = (
    ("ubuntu-modern", "bind-9.9.13-9.16.0"),   # Linux 32768-61000
    ("ubuntu-old", "bind-9.9.13-9.16.0"),
    ("freebsd", "bind-9.9.13-9.16.0"),          # IANA 49152-65535
    ("ubuntu-modern", "knot-3.2.1"),
    ("ubuntu-modern", "unbound-1.9.0"),         # 1024-65535
    ("ubuntu-modern", "powerdns-recursor-4.2.0"),
    ("ubuntu-modern", "bind-9.5.2-9.8.8"),
    ("ubuntu-modern", "bind-9.5.0"),            # 8 ports
    ("windows-2008r2+", "windows-dns-2008r2-2019"),  # 2,500-port pool
    ("windows-2003", "windows-dns-2003-2008"),  # 1 port
)


def make_allocator(
    os_name: str, software_name: str, seed: int = 0
) -> PortAllocator:
    """Instantiate the allocator for one OS/software combination."""
    profile = software_profile(software_name)
    return profile.allocator(os_profile(os_name), Random(seed))


def sample_allocator_ports(
    allocator: PortAllocator, n_queries: int = 10_000
) -> list[int]:
    """Draw *n_queries* source ports, as the lab's query burst would."""
    return [allocator.next_port() for _ in range(n_queries)]


def sample_ranges(
    ports: list[int], sample_size: int = SAMPLE_SIZE
) -> list[int]:
    """Chop *ports* into consecutive samples and return each range.

    This is exactly the paper's procedure: "we divided the 10,000
    queries ... into samples of size 10 ... yielding 1,000 sample ranges
    for each DNS software."
    """
    return [
        observed_range(ports[i : i + sample_size])
        for i in range(0, len(ports) - sample_size + 1, sample_size)
    ]


@dataclass(frozen=True, slots=True)
class PortStudyResult:
    """Port observations for one OS/software combination."""

    os_name: str
    software: str
    ports: tuple[int, ...]
    ranges: tuple[int, ...]

    @property
    def pool_span(self) -> int:
        return max(self.ports) - min(self.ports)

    @property
    def distinct_ports(self) -> int:
        return len(set(self.ports))


def lab_port_study(
    n_queries: int = 10_000,
    *,
    combinations: tuple[tuple[str, str], ...] = LAB_COMBINATIONS,
    seed: int = 7,
) -> list[PortStudyResult]:
    """Run the fast-path port study across all lab combinations."""
    results = []
    for index, (os_name, software_name) in enumerate(combinations):
        allocator = make_allocator(os_name, software_name, seed + index)
        ports = sample_allocator_ports(allocator, n_queries)
        results.append(
            PortStudyResult(
                os_name,
                software_name,
                tuple(ports),
                tuple(sample_ranges(ports)),
            )
        )
    return results


# ---------------------------------------------------------------------------
# end-to-end variant: a real resolver against a lab authoritative server
# ---------------------------------------------------------------------------

_LAB_ASN = 64512
_LAB_DOMAIN = "lab.test"


def _build_lab_fabric(
    resolver_os: OSProfile,
    allocator: PortAllocator,
    seed: int,
) -> tuple[Fabric, StubResolver, RecursiveResolver, AuthoritativeServer, Address]:
    fabric = Fabric(seed=seed)
    system = AutonomousSystem(
        _LAB_ASN, name="lab", osav=False, dsav=False, martian_filtering=False
    )
    system.add_prefix("10.77.0.0/16")
    fabric.add_system(system)
    rng = Random(seed)

    auth = AuthoritativeServer("lab-auth", _LAB_ASN, Random(seed + 1))
    auth_addr = ip_address("10.77.0.1")
    fabric.attach(auth, auth_addr)
    domain = name(_LAB_DOMAIN)
    root_zone = Zone(ROOT, SOA(name("lab-auth."), name("root."), 1, 60, 60, 60, 60))
    ns_label = name("ns.lab.test.")
    root_zone.add(RR(ROOT, RRType.NS, 1, 60, NS(ns_label)))
    root_zone.add(RR(ns_label, RRType.A, 1, 60, A(auth_addr)))
    root_zone.add(RR(domain, RRType.NS, 1, 60, NS(ns_label)))
    zone = Zone(domain, SOA(ns_label, name("hostmaster.lab.test."), 1, 60, 60, 60, 60))
    zone.add(RR(domain, RRType.NS, 1, 60, NS(ns_label)))
    zone.add(RR(ns_label, RRType.A, 1, 60, A(auth_addr)))
    zone.add(
        RR(domain.child(b"*"), RRType.TXT, 1, 1, TXT.from_text("lab"))
    )
    auth.add_zone(root_zone)
    auth.add_zone(zone)

    resolver = RecursiveResolver(
        "lab-resolver",
        _LAB_ASN,
        resolver_os,
        Random(seed + 2),
        port_allocator=allocator,
        acl=AccessControl(open_=True),
        root_hints=[auth_addr],
        software="lab",
    )
    resolver_addr = ip_address("10.77.0.2")
    fabric.attach(resolver, resolver_addr)

    stub = StubResolver("lab-stub", _LAB_ASN, Random(seed + 3))
    fabric.attach(stub, ip_address("10.77.0.3"))
    return fabric, stub, resolver, auth, resolver_addr


def run_resolution_port_study(
    os_name: str,
    software_name: str,
    n_queries: int = 100,
    *,
    seed: int = 11,
) -> list[int]:
    """Drive a real resolver through *n_queries* unique resolutions and
    return the source ports its authoritative-side queries used."""
    allocator = make_allocator(os_name, software_name, seed)
    fabric, stub, resolver, auth, resolver_addr = _build_lab_fabric(
        os_profile(os_name), allocator, seed
    )
    domain = name(_LAB_DOMAIN)
    for i in range(n_queries):
        stub.query(resolver_addr, domain.child(f"q{i}"), RRType.TXT)
        fabric.run()
    return [
        record.sport
        for record in auth.query_log
        if record.src == resolver_addr
        and record.qname.is_subdomain_of(domain)
        and not record.qname == domain
    ]


# ---------------------------------------------------------------------------
# Table 6: spoofed-local packet acceptance
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AcceptanceRow:
    """One OS's Table 6 row."""

    os_name: str
    ds_v4: bool
    lb_v4: bool
    ds_v6: bool
    lb_v6: bool


def os_acceptance_matrix(
    profiles: tuple[str, ...] | None = None,
) -> list[AcceptanceRow]:
    """Derive Table 6 by driving each OS's network stack directly."""
    names = profiles or tuple(
        key
        for key in OS_PROFILES
        if key not in ("baidu-spider", "generic-embedded")
    )
    rows = []
    v4_local = ip_address("10.77.0.9")
    v6_local = ip_address("2a00:77::9")
    for os_name in names:
        stack = NetworkStack(os_profile(os_name))
        stack.add_address(v4_local)
        stack.add_address(v6_local)

        def accepted(src: Address, dst: Address) -> bool:
            packet = Packet(
                src=src, dst=dst, sport=5353, dport=53,
                payload=b"", transport=Transport.UDP,
            )
            return stack.accepts(packet)

        rows.append(
            AcceptanceRow(
                os_name=os_name,
                ds_v4=accepted(v4_local, v4_local),
                lb_v4=accepted(LOOPBACK_V4, v4_local),
                ds_v6=accepted(v6_local, v6_local),
                lb_v6=accepted(LOOPBACK_V6, v6_local),
            )
        )
    return rows


def run_acceptance_lab(os_name: str, *, seed: int = 23) -> AcceptanceRow:
    """End-to-end Table 6 check: spoofed-local queries at a resolver.

    Builds a lab fabric whose borders filter nothing, sends
    destination-as-source and loopback queries at a resolver running
    *os_name*, and reports which ones produced authoritative-side
    evidence — the exact observable of Section 5.5.
    """
    allocator = make_allocator(os_name, "bind-9.9.13-9.16.0", seed)
    fabric, stub, resolver, auth, resolver_v4 = _build_lab_fabric(
        os_profile(os_name), allocator, seed
    )
    # Give the resolver a v6 presence for the v6 cases.
    system = fabric.system(_LAB_ASN)
    system.add_prefix("2a00:77::/64")
    fabric.routes.announce("2a00:77::/64", _LAB_ASN)
    resolver_v6 = ip_address("2a00:77::2")
    fabric.bind_address(resolver, resolver_v6)

    domain = name(_LAB_DOMAIN)
    rng = Random(seed)

    def probe(src: Address, dst: Address, tag: str) -> bool:
        qname = domain.child(f"accept-{tag}")
        from ..dns.message import Message

        message = Message.make_query(rng.randrange(0x10000), qname, RRType.TXT)
        packet = Packet(
            src=src, dst=dst, sport=1024 + rng.randrange(60000), dport=53,
            payload=message.to_wire(), transport=Transport.UDP,
        )
        stub.send(packet)
        fabric.run()
        return any(record.qname == qname for record in auth.query_log)

    return AcceptanceRow(
        os_name=os_name,
        ds_v4=probe(resolver_v4, resolver_v4, "ds4"),
        lb_v4=probe(LOOPBACK_V4, resolver_v4, "lb4"),
        ds_v6=probe(resolver_v6, resolver_v6, "ds6"),
        lb_v6=probe(LOOPBACK_V6, resolver_v6, "lb6"),
    )
