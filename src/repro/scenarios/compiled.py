"""Compiled-scenario artifacts: build once, share everywhere.

``build_internet`` is a pure function of :class:`ScenarioParams`, but it
is not free — route tables are compiled, geo tables filled, addresses
interned, and every AS populated.  The sharded pipeline used to pay
that cost once *per worker*.  This module serializes a fully built
:class:`~repro.scenarios.internet.BuiltScenario` into a versioned,
content-addressed artifact so the build happens exactly once:

* the pipeline parent builds (or cache-loads) the scenario, writes the
  artifact into the run directory next to the shard artifacts, and
  shares the live object with forked shard workers;
* workers that cannot inherit memory (spawned pools, resumed runs in a
  fresh process) load the artifact instead of rebuilding;
* a content-keyed on-disk cache (:class:`ScenarioCache`) lets repeated
  runs of the same spec skip the build entirely.

Artifact format: one JSON header line (schema version, content key,
payload digest, summary fields) followed by a zlib-compressed pickle of
the scenario.  The content key hashes the canonical parameter payload
plus the builder code version, so any spec change — or any
semantics-changing builder change, via :data:`SCENARIO_CODE_VERSION` —
invalidates cache entries instead of silently serving a stale world.

Trust model: artifacts are pickles.  Load them only from directories
you (or your pipeline) wrote — the same trust boundary as the run
directory itself.  The payload digest in the header guards against
corruption, not against an adversarial artifact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .params import ResolverKind, ScenarioParams

if TYPE_CHECKING:
    from .internet import BuiltScenario

#: Artifact layout version.  Readers refuse artifacts from a different
#: version rather than guessing at their contents.
SCENARIO_SCHEMA_VERSION = 1

#: Version of the scenario *builder semantics*.  Bump whenever
#: ``build_internet`` changes what it produces for the same params —
#: the content key folds this in, so stale cache entries miss instead
#: of resurrecting an old world.
#: 2: policy-aware topology engine (graph + compiled valley-free path
#: tables ride inside the artifact; ``BuiltScenario`` gained a
#: ``topology`` field, so version-1 pickles must not be resurrected).
SCENARIO_CODE_VERSION = 2

_MAGIC = "repro-compiled-scenario"

#: Environment variable naming the default scenario cache directory.
CACHE_ENV = "REPRO_SCENARIO_CACHE"


class ScenarioArtifactError(ValueError):
    """An artifact failed validation (version, key, or digest)."""


def _kind_payload(kind: ResolverKind) -> dict[str, Any]:
    return {
        "key": kind.key,
        "os_name": kind.os_name,
        "software": kind.software,
        "weight": kind.weight,
        "open_probability": kind.open_probability,
        "fuzz_probability": kind.fuzz_probability,
    }


def params_payload(params: ScenarioParams) -> dict[str, Any]:
    """Canonical JSON-able view of *params*, for content addressing.

    Resolver kinds are represented by their registry descriptors (the
    allocator factory itself is code, captured by
    :data:`SCENARIO_CODE_VERSION`); every other field is a scalar or a
    plain dict and passes through unchanged.
    """
    payload: dict[str, Any] = {}
    for field in dataclasses.fields(params):
        value = getattr(params, field.name)
        if field.name == "resolver_mix":
            value = [_kind_payload(kind) for kind in value]
        elif field.name == "topology":
            value = value.to_payload() if value is not None else None
        elif field.name == "evolution":
            # Absent — not null — when unset, so every pre-evolution
            # content key (including the CI-pinned star hash) survives.
            if value is None:
                continue
        payload[field.name] = value
    return payload


def content_key(params: ScenarioParams) -> str:
    """Content address of the scenario *params* would build."""
    canonical = json.dumps(
        {
            "schema_version": SCENARIO_SCHEMA_VERSION,
            "code_version": SCENARIO_CODE_VERSION,
            "params": params_payload(params),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def serialize_scenario(scenario: "BuiltScenario") -> bytes:
    """Serialize a built scenario into artifact bytes (header + payload)."""
    payload = zlib.compress(
        pickle.dumps(scenario, protocol=pickle.HIGHEST_PROTOCOL), 1
    )
    header = {
        "format": _MAGIC,
        "schema_version": SCENARIO_SCHEMA_VERSION,
        "code_version": SCENARIO_CODE_VERSION,
        "content_key": content_key(scenario.params),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "seed": scenario.params.seed,
        "n_ases": scenario.params.n_ases,
        "resolvers": len(scenario.ground_truth.resolvers),
    }
    return json.dumps(header, sort_keys=True).encode() + b"\n" + payload


def read_artifact_header(data: bytes) -> dict[str, Any]:
    """Parse and validate the artifact's JSON header line."""
    newline = data.find(b"\n")
    if newline < 0:
        raise ScenarioArtifactError("scenario artifact has no header line")
    try:
        header = json.loads(data[:newline])
    except ValueError as exc:
        raise ScenarioArtifactError(
            f"scenario artifact header is not valid JSON ({exc})"
        ) from exc
    if header.get("format") != _MAGIC:
        raise ScenarioArtifactError(
            f"not a compiled-scenario artifact (format="
            f"{header.get('format')!r})"
        )
    version = header.get("schema_version")
    if version != SCENARIO_SCHEMA_VERSION:
        raise ScenarioArtifactError(
            f"scenario artifact has schema_version={version!r}, this "
            f"code reads version {SCENARIO_SCHEMA_VERSION}"
        )
    return header


def deserialize_scenario(
    data: bytes, *, expect_key: str | None = None
) -> "BuiltScenario":
    """Load a scenario from artifact bytes, verifying header and digest.

    *expect_key* (normally :func:`content_key` of the spec about to be
    scanned) guards against loading an artifact built from different
    parameters or by a different builder version.
    """
    header = read_artifact_header(data)
    if expect_key is not None and header["content_key"] != expect_key:
        raise ScenarioArtifactError(
            f"scenario artifact was built from different parameters "
            f"(content key {header['content_key'][:12]}…, expected "
            f"{expect_key[:12]}…)"
        )
    payload = data[data.find(b"\n") + 1 :]
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["payload_sha256"]:
        raise ScenarioArtifactError(
            f"scenario artifact payload failed its digest "
            f"(recorded {header['payload_sha256'][:12]}…, "
            f"found {digest[:12]}…)"
        )
    return pickle.loads(zlib.decompress(payload))


def write_scenario(path, scenario: "BuiltScenario") -> bytes:
    """Atomically write *scenario*'s artifact to *path*; return the bytes."""
    data = serialize_scenario(scenario)
    return _write_atomic(Path(path), data)


def write_artifact_bytes(path, data: bytes) -> None:
    """Atomically write already-serialized artifact bytes to *path*."""
    _write_atomic(Path(path), data)


def load_scenario(path, *, expect_key: str | None = None) -> "BuiltScenario":
    """Load a scenario artifact from *path* (see :func:`deserialize_scenario`)."""
    return deserialize_scenario(
        Path(path).read_bytes(), expect_key=expect_key
    )


def _write_atomic(path: Path, data: bytes) -> bytes:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)
    return data


class ScenarioCache:
    """Content-keyed on-disk store of compiled scenarios.

    Entries are immutable: the filename is the content key, so a hit is
    by construction the same world a cold build would produce, and a
    spec or builder-version change simply misses.  Concurrent writers
    are safe — both produce identical bytes and the write is atomic.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)

    @classmethod
    def from_env(cls) -> "ScenarioCache | None":
        """The cache named by :data:`CACHE_ENV`, or ``None`` if unset."""
        root = os.environ.get(CACHE_ENV)
        return cls(root) if root else None

    def entry_path(self, key: str) -> Path:
        return self.root / f"scenario-{key}.bin"

    def get_bytes(self, params: ScenarioParams) -> bytes | None:
        """Artifact bytes for *params*, or ``None`` on a miss.

        A corrupt entry (failed digest, wrong version) is evicted and
        treated as a miss rather than poisoning every future run.
        """
        key = content_key(params)
        path = self.entry_path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            header = read_artifact_header(data)
            if header["content_key"] != key:
                raise ScenarioArtifactError("cache entry key mismatch")
            payload = data[data.find(b"\n") + 1 :]
            if hashlib.sha256(payload).hexdigest() != header["payload_sha256"]:
                raise ScenarioArtifactError("cache entry digest mismatch")
        except ScenarioArtifactError:
            path.unlink(missing_ok=True)
            return None
        return data

    def put_bytes(self, params: ScenarioParams, data: bytes) -> Path:
        key = content_key(params)
        path = self.entry_path(key)
        _write_atomic(path, data)
        return path


def build_or_load(
    params: ScenarioParams, *, cache: ScenarioCache | None = None
) -> tuple["BuiltScenario", bytes | None, str]:
    """Build *params*' scenario, or load it from *cache* on a hit.

    Returns ``(scenario, artifact_bytes, source)`` where *source* is
    ``"cache"`` or ``"built"``.  On a cold build with a cache attached
    the artifact is serialized once and stored, so the bytes double as
    the run-directory artifact; without a cache, ``artifact_bytes`` is
    ``None`` and callers serialize only if they need the bytes.
    """
    if cache is not None:
        data = cache.get_bytes(params)
        if data is not None:
            return deserialize_scenario(data), data, "cache"
    from .internet import build_internet

    scenario = build_internet(params)
    data = None
    if cache is not None:
        data = serialize_scenario(scenario)
        cache.put_bytes(params, data)
    return scenario, data, "built"
