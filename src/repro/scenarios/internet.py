"""Synthetic-Internet scenario builder.

Builds everything the experiment needs, in one deterministic pass from a
seed: an AS topology with per-country DSAV policy, a resolver population
drawn from :data:`~repro.scenarios.params.RESOLVER_MIX`, the DNS
infrastructure (root servers, the ``org`` TLD, and the ``dns-lab.org``
authoritative servers with their v4-only / v6-only / truncation
delegations), a DITL-style candidate trace with realistic pollution, an
IPv6 hit list, a historical port trace for the Section 5.2.2 passive
comparison, IDS/analyst behaviour for the Section 3.6.3 lifetime filter
— plus the ground truth needed to validate every analysis result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from ipaddress import IPv4Network, IPv6Network, ip_address, ip_network
from random import Random

from ..core.collection import Collector
from ..core.qname import QueryNameCodec
from ..core.scanner import ScanClient, ScanConfig, Scanner
from ..core.sources import SourceCategory, SpoofPlanner
from ..core.targets import TargetSet, select_targets
from ..dns.auth import AuthoritativeServer
from ..dns.message import Message
from ..dns.name import Name, ROOT, name
from ..dns.resolver import AccessControl, RecursiveResolver, ResolverConfig
from ..dns.rr import A, AAAA, NS, RR, SOA, RRType, TXT
from ..dns.zone import Zone
from ..netsim.addresses import Address, Network, host_in_prefix, subnet_of
from ..netsim.autonomous_system import AutonomousSystem
from ..netsim.determinism import stable_fraction, stable_hash
from ..netsim.fabric import Fabric, Host
from ..netsim.geo import GeoDatabase, draw_country
from ..netsim.packet import Packet, TCPSignature, Transport
from ..netsim.topology import (
    ASGraph,
    generate_topology,
    v4_prefix_count,
    v4_prefix_lengths,
    v6_prefix_lengths,
)
from ..oskernel.ports import UniformPoolAllocator
from ..oskernel.profiles import os_profile
from .params import ResolverKind, ScenarioParams

#: Reserved ASNs for the experiment's own infrastructure.
MEASUREMENT_ASN = 64496
INFRA_ASN = 64497
PUBLIC_DNS_ASN = 64498

#: First ASN handed to synthetic target networks.
FIRST_TARGET_ASN = 1000

EXPERIMENT_DOMAIN = "dns-lab.org"
EXPERIMENT_KEYWORD = "bcd19"


@dataclass
class ResolverInfo:
    """Ground truth about one candidate resolver address."""

    asn: int
    addresses: list[Address]
    kind: ResolverKind
    alive: bool
    open_: bool
    forwarder_target: Address | None
    qmin: str | None
    host: RecursiveResolver | None = None
    #: disclosure contact reachable via PTR -> SOA RNAME, if any.
    contact_mailbox: str | None = None

    @property
    def is_forwarder(self) -> bool:
        return self.forwarder_target is not None


@dataclass
class GroundTruth:
    """What the scenario actually built, for validating the analysis."""

    dsav_lacking_asns: set[int] = field(default_factory=set)
    martian_unfiltered_asns: set[int] = field(default_factory=set)
    resolvers: list[ResolverInfo] = field(default_factory=list)
    by_address: dict[Address, ResolverInfo] = field(default_factory=dict)

    def info_for(self, address: Address) -> ResolverInfo | None:
        return self.by_address.get(address)


@dataclass
class BuiltScenario:
    """A fully wired synthetic Internet, ready to scan."""

    params: ScenarioParams
    fabric: Fabric
    geo: GeoDatabase
    client: ScanClient
    codec: QueryNameCodec
    auth_servers: list[AuthoritativeServer]
    root_servers: list[AuthoritativeServer]
    hosting_server: AuthoritativeServer | None
    ditl_candidates: list[Address]
    hitlist: frozenset[Network]
    port_history: dict[Address, list[int]]
    ground_truth: GroundTruth
    #: policy-aware AS graph, or ``None`` for legacy star scenarios.
    topology: ASGraph | None = None
    truth: GroundTruth = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.truth = self.ground_truth

    @property
    def routes(self):
        return self.fabric.routes

    def target_set(self) -> TargetSet:
        """Apply the Section 3.1 filters to the DITL-style candidates."""
        return select_targets(self.ditl_candidates, self.routes)

    def make_outreach_client(self):
        """Build an :class:`~repro.core.outreach.OutreachClient` wired
        to the reverse-DNS hosting provider."""
        from random import Random as _Random

        from ..core.outreach import OutreachClient
        from ..dns.stub import StubResolver

        if self.hosting_server is None:
            raise RuntimeError("scenario has no reverse-DNS hosting server")
        stub = StubResolver(
            "outreach-stub", INFRA_ASN, _Random(self.params.seed ^ 0x0CE)
        )
        self.fabric.attach(
            stub, ip_address(int(ip_address("20.0.0.0")) + 46)
        )
        return OutreachClient(
            self.fabric, stub, self.hosting_server.addresses[0]
        )

    def ditl_trace(self):
        """Synthesize the 48-hour DITL trace behind the candidate list.

        The trace round-trips through :mod:`repro.core.ditl`'s
        serialization, so campaigns can be driven from files exactly as
        the original study was driven from the OARC collections.
        """
        from ..core.ditl import synthesize_trace

        return synthesize_trace(
            self.ditl_candidates, seed=self.params.seed
        )

    def make_planner(
        self,
        *,
        categories: frozenset[SourceCategory] = frozenset(SourceCategory),
        max_other_prefix: int | None = None,
    ) -> SpoofPlanner:
        kwargs = {}
        if max_other_prefix is not None:
            kwargs["max_other_prefix"] = max_other_prefix
        return SpoofPlanner(
            self.routes,
            seed=self.params.seed,
            hitlist=self.hitlist,
            categories=categories,
            **kwargs,
        )

    def make_scanner(
        self,
        config: ScanConfig | None = None,
        *,
        planner: SpoofPlanner | None = None,
        targets: TargetSet | None = None,
    ) -> tuple[Scanner, Collector]:
        """Wire a scanner + collector over this scenario."""
        targets = targets or self.target_set()
        planner = planner or self.make_planner()
        scanner = Scanner(
            self.fabric,
            self.client,
            self.codec,
            targets,
            planner,
            self.auth_servers,
            config or ScanConfig(),
            seed=self.params.seed,
        )
        from ..core.qname import Channel

        terminators: dict[str, frozenset[Channel]] = {}
        for server in self.auth_servers:
            if server.name.endswith("-v4"):
                terminators[server.name] = frozenset({Channel.V4_ONLY})
            elif server.name.endswith("-v6"):
                terminators[server.name] = frozenset({Channel.V6_ONLY})
            else:
                terminators[server.name] = frozenset(
                    {Channel.MAIN, Channel.TCP}
                )
        collector = Collector(
            codec=self.codec,
            probe_index=scanner.probe_index,
            real_addresses=frozenset(self.client.addresses),
            routes=self.routes,
            channel_terminators=terminators,
        )
        collector.attach(self.auth_servers)
        return scanner, collector


# ---------------------------------------------------------------------------
# address space allocation
# ---------------------------------------------------------------------------


class _SpaceAllocator:
    """Sequential, collision-free allocation of announceable prefixes."""

    def __init__(self) -> None:
        self._v4_block = 0
        self._v6_block = 0

    def next_v4(self, prefixlen: int) -> IPv4Network:
        """Allocate a fresh v4 prefix (16 <= prefixlen <= 24).

        Prefixes of /20 and longer take one 2^12-address block each —
        the legacy layout, byte-identical to pre-topology scenarios.
        Shorter prefixes (tier-1/2 aggregates) take naturally aligned
        runs of blocks; the 20.0.0.0 base is /8-aligned, so rounding
        the block cursor up to a multiple of the run length aligns the
        prefix itself.
        """
        blocks = 1 << max(0, 20 - prefixlen)
        if blocks > 1:
            self._v4_block = -(-self._v4_block // blocks) * blocks
        base = int(ip_address("20.0.0.0")) + self._v4_block * (1 << 12)
        self._v4_block += blocks
        if base >= int(ip_address("100.0.0.0")):
            raise RuntimeError("v4 scenario space exhausted")
        return ip_network((base, prefixlen))

    def next_v6(self, prefixlen: int) -> IPv6Network:
        """Allocate a fresh v6 prefix (48 <= prefixlen <= 64).

        /56 and longer keep the legacy one-block layout; shorter
        allocations take aligned runs, as for v4.
        """
        blocks = 1 << max(0, 56 - prefixlen)
        if blocks > 1:
            self._v6_block = -(-self._v6_block // blocks) * blocks
        base = int(ip_address("2a00::")) + self._v6_block * (1 << 72)
        self._v6_block += blocks
        return ip_network((base, prefixlen))


# Host placement inside announced prefixes lives with the other address
# utilities; the explicit-rng threading is what keeps shard workers
# deterministic.
_host_in = host_in_prefix


# ---------------------------------------------------------------------------
# infrastructure: roots, TLD, experiment zones
# ---------------------------------------------------------------------------


def _soa(origin: str, mname: str, rname: str) -> SOA:
    return SOA(
        mname=name(mname),
        rname=name(rname),
        serial=2019110601,
        refresh=7200,
        retry=900,
        expire=1209600,
        minimum=60,
    )


@dataclass
class _Infra:
    root_servers: list[AuthoritativeServer]
    org_servers: list[AuthoritativeServer]
    auth_servers: list[AuthoritativeServer]
    root_hints: list[Address]
    public_resolvers: dict[int, Address]   # family -> public DNS address


def _build_infrastructure(
    fabric: Fabric,
    space: _SpaceAllocator,
    rng: Random,
    *,
    wildcard_answers: bool,
) -> _Infra:
    infra_as = AutonomousSystem(
        INFRA_ASN, name="infra", osav=True, dsav=True, country="US"
    )
    v4_prefix = infra_as.add_prefix(space.next_v4(20))
    v6_prefix = infra_as.add_prefix(space.next_v6(56))
    fabric.add_system(infra_as)

    def infra_addr(offset: int, version: int) -> Address:
        prefix = v4_prefix if version == 4 else v6_prefix
        return ip_address(int(prefix.network_address) + offset)

    freebsd = os_profile("freebsd")

    # Root servers (two, dual stack).
    roots: list[AuthoritativeServer] = []
    root_hints: list[Address] = []
    root_zone = Zone(ROOT, _soa(".", "a.root.lab.", "nstld.lab."))
    for index in (0, 1):
        server = AuthoritativeServer(
            f"root-{'ab'[index]}", INFRA_ASN, Random(rng.randrange(2**32)),
            profile=freebsd,
        )
        v4 = infra_addr(10 + index, 4)
        v6 = infra_addr(10 + index, 6)
        fabric.attach(server, v4, v6)
        roots.append(server)
        root_hints.extend([v4, v6])
        label = name(f"{'ab'[index]}.root.lab.")
        root_zone.add(RR(ROOT, RRType.NS, 1, 518400, NS(label)))
        root_zone.add(RR(label, RRType.A, 1, 518400, A(v4)))
        root_zone.add(RR(label, RRType.AAAA, 1, 518400, AAAA(v6)))

    # org TLD servers (two, dual stack), delegated from the root.
    org_zone = Zone(name("org."), _soa("org.", "a.org-ns.lab.", "tld.lab."))
    org_servers: list[AuthoritativeServer] = []
    for index in (0, 1):
        server = AuthoritativeServer(
            f"org-{'ab'[index]}", INFRA_ASN, Random(rng.randrange(2**32)),
            profile=freebsd,
        )
        v4 = infra_addr(20 + index, 4)
        v6 = infra_addr(20 + index, 6)
        fabric.attach(server, v4, v6)
        org_servers.append(server)
        ns_name = name(f"{'ab'[index]}.org-ns.lab.")
        root_zone.add(RR(name("org."), RRType.NS, 1, 172800, NS(ns_name)))
        root_zone.add(RR(ns_name, RRType.A, 1, 172800, A(v4)))
        root_zone.add(RR(ns_name, RRType.AAAA, 1, 172800, AAAA(v6)))
        org_zone.add(RR(name("org."), RRType.NS, 1, 172800, NS(ns_name)))
    for server in roots:
        server.add_zone(root_zone)
    for server in org_servers:
        server.add_zone(org_zone)

    # Experiment authoritative servers: two dual-stack for the main zone,
    # one v4-only and one v6-only for the family-restricted delegations.
    domain = name(EXPERIMENT_DOMAIN)
    # Section 3.7: RNAME carries a contact address, MNAME names the web
    # server describing the project.
    lab_zone = Zone(
        domain, _soa(EXPERIMENT_DOMAIN, "www.dns-lab.org.", "research.dns-lab.org.")
    )
    auth_servers: list[AuthoritativeServer] = []
    main_ns_addrs: list[tuple[Address, Address]] = []
    for index in (0, 1):
        server = AuthoritativeServer(
            f"dns-lab-ns{index + 1}", INFRA_ASN,
            Random(rng.randrange(2**32)), profile=freebsd,
        )
        v4 = infra_addr(30 + index, 4)
        v6 = infra_addr(30 + index, 6)
        fabric.attach(server, v4, v6)
        server.add_truncation_domain(domain.child("tc"))
        auth_servers.append(server)
        main_ns_addrs.append((v4, v6))
        ns_name = domain.child(f"ns{index + 1}")
        org_zone.add(RR(domain, RRType.NS, 1, 86400, NS(ns_name)))
        org_zone.add(RR(ns_name, RRType.A, 1, 86400, A(v4)))
        org_zone.add(RR(ns_name, RRType.AAAA, 1, 86400, AAAA(v6)))
        lab_zone.add(RR(domain, RRType.NS, 1, 86400, NS(ns_name)))
        lab_zone.add(RR(ns_name, RRType.A, 1, 86400, A(v4)))
        lab_zone.add(RR(ns_name, RRType.AAAA, 1, 86400, AAAA(v6)))

    # v4-only and v6-only delegations (Section 3.5 follow-ups).
    v4_origin = domain.child("v4")
    v6_origin = domain.child("v6")
    auth_v4 = AuthoritativeServer(
        "dns-lab-v4", INFRA_ASN, Random(rng.randrange(2**32)), profile=freebsd
    )
    auth_v4_addr = infra_addr(40, 4)
    fabric.attach(auth_v4, auth_v4_addr)
    auth_v6 = AuthoritativeServer(
        "dns-lab-v6", INFRA_ASN, Random(rng.randrange(2**32)), profile=freebsd
    )
    auth_v6_addr = infra_addr(41, 6)
    fabric.attach(auth_v6, auth_v6_addr)

    ns_v4 = v4_origin.child("ns")
    lab_zone.add(RR(v4_origin, RRType.NS, 1, 86400, NS(ns_v4)))
    lab_zone.add(RR(ns_v4, RRType.A, 1, 86400, A(auth_v4_addr)))
    ns_v6 = v6_origin.child("ns")
    lab_zone.add(RR(v6_origin, RRType.NS, 1, 86400, NS(ns_v6)))
    lab_zone.add(RR(ns_v6, RRType.AAAA, 1, 86400, AAAA(auth_v6_addr)))

    v4_zone = Zone(v4_origin, _soa("v4", "www.dns-lab.org.", "research.dns-lab.org."))
    v4_zone.add(RR(ns_v4, RRType.A, 1, 86400, A(auth_v4_addr)))
    v4_zone.add(RR(v4_origin, RRType.NS, 1, 86400, NS(ns_v4)))
    v6_zone = Zone(v6_origin, _soa("v6", "www.dns-lab.org.", "research.dns-lab.org."))
    v6_zone.add(RR(ns_v6, RRType.AAAA, 1, 86400, AAAA(auth_v6_addr)))
    v6_zone.add(RR(v6_origin, RRType.NS, 1, 86400, NS(ns_v6)))

    if wildcard_answers:
        # The Section 3.6.4 "future version": synthesize answers from
        # wildcards instead of returning NXDOMAIN, so QNAME-minimizing
        # resolvers keep descending to the full query name.
        for zone, origin in (
            (lab_zone, domain),
            (v4_zone, v4_origin),
            (v6_zone, v6_origin),
        ):
            zone.add(
                RR(
                    origin.child(b"*"),
                    RRType.TXT,
                    1,
                    1,
                    TXT.from_text("behind-closed-doors-experiment"),
                )
            )

    for server in auth_servers:
        server.add_zone(lab_zone)
    auth_v4.add_zone(v4_zone)
    auth_v6.add_zone(v6_zone)
    all_auth = auth_servers + [auth_v4, auth_v6]

    # Public DNS service (the forwarding upstream of Section 5.4 /
    # middlebox stand-in of Section 3.6.1).
    public_as = AutonomousSystem(
        PUBLIC_DNS_ASN, name="public-dns", osav=True, dsav=True, country="US"
    )
    pub_v4_prefix = public_as.add_prefix(space.next_v4(24))
    pub_v6_prefix = public_as.add_prefix(space.next_v6(64))
    fabric.add_system(public_as)
    pub_v4 = ip_address(int(pub_v4_prefix.network_address) + 1)
    pub_v6 = ip_address(int(pub_v6_prefix.network_address) + 1)
    # The public service is modelled as a stateless anycast frontend:
    # no cache survives between resolutions and its upstream ports/IDs
    # are content-derived, so its behaviour toward any one client never
    # depends on what other clients did first.  That matches how little
    # a real anycast fleet shares between queries — and it is what lets
    # the sharded campaign pipeline give every worker process its own
    # replica of this service while still merging byte-identically.
    public = RecursiveResolver(
        "public-dns", PUBLIC_DNS_ASN, os_profile("ubuntu-modern"),
        Random(rng.randrange(2**32)),
        port_allocator=UniformPoolAllocator.linux_default(
            Random(rng.randrange(2**32))
        ),
        acl=AccessControl(open_=True),
        config=ResolverConfig(stateless=True),
        root_hints=root_hints,
        software="public-anycast",
    )
    fabric.attach(public, pub_v4, pub_v6)

    return _Infra(
        root_servers=roots,
        org_servers=org_servers,
        auth_servers=all_auth,
        root_hints=root_hints,
        public_resolvers={4: pub_v4, 6: pub_v6},
    )


# ---------------------------------------------------------------------------
# target networks
# ---------------------------------------------------------------------------


def _perturbed_signature(base: TCPSignature, rng: Random) -> TCPSignature:
    """A SYN signature close to *base* but outside the p0f database."""
    return TCPSignature(
        initial_ttl=base.initial_ttl,
        window_size=max(512, base.window_size + rng.choice(
            (-1460, -512, 512, 1024, 2048, 4096)
        )),
        mss=base.mss,
        window_scale=base.window_scale,
        options=base.options,
    )


def _draw_resolver_count(rng: Random, mean: float) -> int:
    """Skewed per-AS resolver count with mean roughly *mean*."""
    value = rng.expovariate(1.0 / mean)
    return max(1, min(int(math.ceil(value)), int(mean * 5)))


def _pick_kind(rng: Random, mix: tuple[ResolverKind, ...]) -> ResolverKind:
    weights = [k.weight for k in mix]
    return rng.choices(mix, weights=weights, k=1)[0]


def _history_ports(
    info_kind: ResolverKind,
    current_allocator_port: int | None,
    rng: Random,
    params: ScenarioParams,
) -> list[int]:
    """Synthesize the 2018-DITL-style port history (Section 5.2.2)."""
    roll = rng.random()
    if roll < params.history_stable_rate:
        port = current_allocator_port if current_allocator_port else 53
        return [port] * 12
    if roll < params.history_stable_rate + params.history_regressed_rate:
        return [32768 + rng.randrange(28233) for _ in range(12)]
    # Insufficient data: too few observations for a fair comparison.
    return [1024 + rng.randrange(64512) for _ in range(rng.randrange(3))]


def build_internet(
    params: ScenarioParams | None = None,
    *,
    wildcard_answers: bool = False,
) -> BuiltScenario:
    """Construct the full synthetic Internet for one scan campaign."""
    params = params or ScenarioParams()
    rng = Random(params.seed)
    fabric = Fabric(seed=params.seed, loss_rate=params.packet_loss_rate)
    geo = GeoDatabase()
    space = _SpaceAllocator()
    truth = GroundTruth()

    # Policy-aware topology (opt-in): generate the AS-relationship
    # graph up front so per-AS prefix draws can skew by tier.  Every
    # graph draw is content-keyed on (seed, asn), independent of the
    # builder's consumed RNG streams, so the legacy star build below is
    # untouched when ``params.topology`` is None.
    graph = None
    if params.topology is not None:
        graph = generate_topology(
            params.topology,
            params.seed,
            [FIRST_TARGET_ASN + i for i in range(params.n_ases)],
            forced_stubs=(MEASUREMENT_ASN, INFRA_ASN, PUBLIC_DNS_ASN),
        )

    infra = _build_infrastructure(
        fabric, space, rng, wildcard_answers=wildcard_answers
    )

    # Measurement client: an AS that performs no OSAV (Section 3.4).
    client_as = AutonomousSystem(
        MEASUREMENT_ASN, name="measurement", osav=False, dsav=True,
        country="US",
    )
    client_v4_prefix = client_as.add_prefix(space.next_v4(24))
    client_v6_prefix = client_as.add_prefix(space.next_v6(64))
    fabric.add_system(client_as)
    client = ScanClient(
        "scan-client", MEASUREMENT_ASN, Random(params.seed),
        hash_seed=params.seed,
    )
    fabric.attach(
        client,
        ip_address(int(client_v4_prefix.network_address) + 7),
        ip_address(int(client_v6_prefix.network_address) + 7),
    )

    codec = QueryNameCodec(name(EXPERIMENT_DOMAIN), EXPERIMENT_KEYWORD)

    ditl_candidates: list[Address] = []
    hitlist: set[Network] = set()
    port_history: dict[Address, list[int]] = {}
    ids_asns: set[int] = set()

    # Longitudinal evolution (opt-in): a per-epoch view whose per-AS
    # state is a pure function of (plan, epoch, asn, tier).  Evolved
    # worlds replace the consumed-stream martian/subnet/population
    # draws with content-keyed ones, so overriding one AS's DSAV
    # posture or regenerating its resolver fleet cannot shift any other
    # AS's draws (or the sequential address allocator) between epochs.
    evo = None
    if params.evolution is not None:
        from ..campaigns.evolution import EvolutionView

        evo = EvolutionView.from_payload(params.evolution)

    for index in range(params.n_ases):
        asn = FIRST_TARGET_ASN + index
        as_rng = Random((params.seed << 20) ^ (asn * 2654435761 % 2**31))
        country = draw_country(as_rng)
        bias = params.country_dsav_bias.get(country, 1.0)
        tier = graph.tier_of(asn) if graph is not None else 3
        lacking = as_rng.random() < min(
            params.dsav_lacking_rate * bias, 0.95
        )
        osav = as_rng.random() < params.osav_rate
        if evo is None:
            martian_filtering = not (
                lacking and as_rng.random() < params.martian_unfiltered_rate
            )
            subnet_sav_v4 = (
                lacking and as_rng.random() < params.subnet_sav_v4_rate
            )
        else:
            lacking = evo.lacking(asn, tier, lacking)
            martian_filtering = not (
                lacking
                and evo.roll("martian", asn) < params.martian_unfiltered_rate
            )
            subnet_sav_v4 = (
                lacking
                and evo.roll("subnet", asn) < params.subnet_sav_v4_rate
            )
        system = AutonomousSystem(
            asn,
            name=f"AS{asn}-{country}",
            osav=osav,
            dsav=not lacking,
            martian_filtering=martian_filtering,
            subnet_sav_v4=subnet_sav_v4,
            subnet_sav_coverage=params.subnet_sav_coverage,
            country=country,
        )
        if lacking:
            truth.dsav_lacking_asns.add(asn)
        if not system.martian_filtering:
            truth.martian_unfiltered_asns.add(asn)

        if graph is None:
            n_v4_prefixes = 1 + min(int(as_rng.expovariate(0.8)), 6)
        else:
            # Tiered address-space skew: transit networks hold more,
            # and shorter, allocations than the stub edge.
            n_v4_prefixes = v4_prefix_count(tier, as_rng)
        for _ in range(n_v4_prefixes):
            if graph is None:
                prefixlen = as_rng.choice((20, 22, 22, 23, 24, 24))
            else:
                prefixlen = as_rng.choice(v4_prefix_lengths(tier))
            prefix = system.add_prefix(space.next_v4(prefixlen))
            geo.assign(
                prefix,
                country if as_rng.random() < 0.9 else draw_country(as_rng),
            )
        v6_fraction = params.v6_as_fraction
        if graph is not None and tier <= 2:
            v6_fraction = 0.85  # transit networks are near-universally v6
        has_v6 = as_rng.random() < v6_fraction
        if has_v6:
            # Mostly single /64s: in the wild the median number of
            # *active* IPv6 subnets per AS is tiny, which is why the
            # paper's IPv6 reachability is dominated by same-prefix and
            # destination-as-source rather than other-prefix sources.
            if graph is not None and tier <= 2:
                n_v6 = 1 + min(int(as_rng.expovariate(1.0)), 3)
            else:
                n_v6 = 1 + min(int(as_rng.expovariate(2.0)), 1)
            for _ in range(n_v6):
                if graph is not None and tier <= 2:
                    prefixlen = as_rng.choice(v6_prefix_lengths(tier))
                else:
                    prefixlen = as_rng.choice((64, 64, 64, 60, 56))
                prefix = system.add_prefix(space.next_v6(prefixlen))
                geo.assign(
                    prefix,
                    country if as_rng.random() < 0.9 else draw_country(as_rng),
                )
        fabric.add_system(system)
        if as_rng.random() < params.ids_as_fraction:
            ids_asns.add(asn)

        if evo is None:
            _populate_as_resolvers(
                params, fabric, infra, system, as_rng, country,
                truth, ditl_candidates, hitlist, port_history,
            )
        else:
            # The population stream is seeded from the AS's churn
            # generation — a turnover event regenerates this one fleet
            # while every other AS (and every other epoch's unchurned
            # ASes) keep their exact draws.
            population = evo.population(asn, tier, _host_in)
            _populate_as_resolvers(
                params, fabric, infra, system, population.rng, country,
                truth, ditl_candidates, hitlist, port_history,
                evo=population,
            )

    # DITL pollution: special-purpose and unrouted sources (Section 3.1).
    for i in range(params.special_purpose_candidates):
        ditl_candidates.append(ip_address(f"192.0.2.{1 + i % 250}"))
    for i in range(params.unrouted_candidates):
        ditl_candidates.append(ip_address(f"99.99.{i}.1"))

    hosting = _build_reverse_hosting(fabric, truth, rng)

    # Every announcement is installed: compile the flat LPM view and the
    # per-AS prefix index once, so the first routed packet (and the
    # planner's prefixes_for_asn calls) already hit the fast path
    # instead of paying the recompile inside the campaign.  Attaching
    # the graph first also compiles the valley-free path tables here,
    # at build time — the compiled-scenario artifact then carries them
    # to every shard.
    if graph is not None:
        fabric.routes.attach_graph(graph)
    fabric.routes.compile()

    scenario = BuiltScenario(
        params=params,
        fabric=fabric,
        geo=geo,
        client=client,
        codec=codec,
        auth_servers=infra.auth_servers,
        root_servers=infra.root_servers,
        hosting_server=hosting,
        ditl_candidates=ditl_candidates,
        hitlist=frozenset(hitlist),
        port_history=port_history,
        ground_truth=truth,
        topology=graph,
    )
    if ids_asns:
        _install_ids(scenario, ids_asns, infra)
    return scenario


def _populate_as_resolvers(
    params: ScenarioParams,
    fabric: Fabric,
    infra: _Infra,
    system: AutonomousSystem,
    as_rng: Random,
    country: str,
    truth: GroundTruth,
    ditl_candidates: list[Address],
    hitlist: set[Network],
    port_history: dict[Address, list[int]],
    *,
    evo=None,
) -> None:
    """Create the resolver population of one AS.

    In evolution mode *as_rng* is the AS's generation-seeded population
    stream and *evo* (an ``_AsPopulation``) applies content-keyed
    software-drift / address-reassignment slot overrides; both hooks
    are no-ops for the legacy path.
    """
    exposure = params.country_exposure_bias.get(country, 1.0)
    v4_prefixes = system.prefixes(4)
    v6_prefixes = system.prefixes(6)
    count = _draw_resolver_count(as_rng, params.mean_resolvers_per_as)
    central_address: dict[int, Address] = {}

    for slot in range(count):
        kind = _pick_kind(as_rng, params.resolver_mix)
        if evo is not None:
            kind = evo.kind(slot, params.resolver_mix, kind)
        is_central = slot == 0
        alive = is_central or as_rng.random() >= params.dead_address_rate

        v4_addr = _host_in(as_rng.choice(v4_prefixes), as_rng)
        if evo is not None:
            v4_addr = evo.v4_address(slot, v4_prefixes, v4_addr)
        addresses: list[Address] = [v4_addr]
        if v6_prefixes and (
            is_central or as_rng.random() < params.dual_stack_rate
        ):
            v6_addr = _host_in(as_rng.choice(v6_prefixes), as_rng)
            addresses.append(v6_addr)
            if (
                not is_central
                and as_rng.random() < params.v6_only_rate
            ):
                addresses = [v6_addr]

        # Avoid address collisions — against live hosts *and* against
        # dead candidate addresses already claimed in the ground truth.
        if any(
            fabric.host_at(a) is not None or a in truth.by_address
            for a in addresses
        ):
            continue

        forwarder_target: Address | None = None
        if not is_central:
            # Dual-stack deployments forward far less often in the wild
            # (Section 5.4: 47% of IPv4 vs 16% of IPv6 targets forwarded).
            rate = (
                params.forwarder_rate_v6
                if len(addresses) > 1
                else params.forwarder_rate_v4
            )
            if as_rng.random() < rate:
                # Forward over a family the resolver actually has.
                family = 4 if any(a.version == 4 for a in addresses) else 6
                if (
                    as_rng.random() < params.forward_to_central_rate
                    and family in central_address
                ):
                    forwarder_target = central_address[family]
                else:
                    forwarder_target = infra.public_resolvers[family]

        base_open = (
            params.forwarder_open_rate
            if forwarder_target is not None
            else kind.open_probability
        )
        open_probability = min(base_open * exposure, 0.95)
        open_ = as_rng.random() < open_probability
        if open_:
            acl = AccessControl(open_=True)
        else:
            roll = as_rng.random()
            narrow_cutoff = (
                params.acl_as_wide_rate
                + params.acl_subnet_only_rate
                + params.acl_narrow_rate
            )
            if is_central or roll < params.acl_as_wide_rate:
                denied: tuple[Network, ...] = ()
                if (
                    not is_central
                    and as_rng.random() < params.acl_exclude_own_subnet_rate
                ):
                    denied = tuple(subnet_of(a) for a in addresses)
                acl = AccessControl(
                    allowed_prefixes=tuple(system.prefixes()),
                    denied_prefixes=denied,
                )
            elif roll < params.acl_as_wide_rate + params.acl_subnet_only_rate:
                acl = AccessControl(
                    allowed_prefixes=tuple(subnet_of(a) for a in addresses)
                )
            elif roll < narrow_cutoff:
                # A couple of corporate subnets; infrastructure-segment
                # resolvers often serve client subnets but not their
                # own, which rejects same-prefix spoofs while one of
                # the 97 other-prefix guesses still lands.
                extra: list[Network] = []
                pool = v4_prefixes + v6_prefixes
                for _ in range(1 + as_rng.randrange(2)):
                    donor = as_rng.choice(pool)
                    extra.append(subnet_of(_host_in(donor, as_rng)))
                allowed = list(extra)
                if (
                    as_rng.random()
                    >= params.acl_narrow_exclude_own_rate
                ):
                    allowed.extend(subnet_of(a) for a in addresses)
                acl = AccessControl(allowed_prefixes=tuple(allowed))
            else:
                # Admits only some unrelated corporate prefix: our spoof
                # plan can never satisfy it (the REFUSED anecdote of
                # Section 3.8).
                acl = AccessControl(
                    allowed_prefixes=(ip_network("203.0.113.0/24"),)
                )

        qmin: str | None = None
        if as_rng.random() < params.qmin_rate:
            qmin = (
                "strict"
                if as_rng.random() < params.qmin_strict_fraction
                else "relaxed"
            )

        info = ResolverInfo(
            asn=system.asn,
            addresses=addresses,
            kind=kind,
            alive=alive,
            open_=open_,
            forwarder_target=forwarder_target,
            qmin=qmin,
        )
        truth.resolvers.append(info)
        # Some live resolvers never touch the roots during the DITL
        # window (deep caches, forward-only paths) and are invisible to
        # the trace-driven target list (Section 2's breadth discussion).
        in_ditl = (
            is_central
            or not alive
            or as_rng.random() >= params.not_in_ditl_rate
        )
        for address in addresses:
            truth.by_address[address] = info
            if in_ditl:
                ditl_candidates.append(address)
            if address.version == 6:
                hitlist.add(subnet_of(address))

        if alive:
            host_rng = Random(as_rng.randrange(2**32))
            allocator = kind.allocator(kind.os, host_rng)
            config = ResolverConfig(
                qname_minimization=qmin,
                forwarder=forwarder_target,
            )
            host = RecursiveResolver(
                f"res-{system.asn}-{slot}",
                system.asn,
                kind.os,
                host_rng,
                port_allocator=allocator,
                acl=acl,
                config=config,
                root_hints=list(infra.root_hints),
                software=kind.software,
            )
            if as_rng.random() < kind.fuzz_probability:
                host.tcp_signature = _perturbed_signature(
                    kind.os.tcp_signature, host_rng
                )
            fabric.attach(host, *addresses)
            info.host = host
            if is_central:
                for address in addresses:
                    central_address[address.version] = address

        # Historical port trace for fixed-port kinds (Section 5.2.2).
        current_port: int | None = None
        if info.alive and info.host is not None:
            if info.host.port_allocator.pool_size() == 1:
                current_port = info.host.port_allocator.next_port()
        if current_port is not None:
            for address in addresses:
                port_history[address] = _history_ports(
                    kind, current_port, as_rng, params
                )


# ---------------------------------------------------------------------------
# reverse DNS hosting (the §5.2.1 disclosure-contact substrate)
# ---------------------------------------------------------------------------

#: Fraction of resolvers with working PTR + SOA RNAME contact chains.
PTR_COVERAGE = 0.70


def _build_reverse_hosting(
    fabric: Fabric, truth: GroundTruth, rng: Random
) -> AuthoritativeServer:
    """One hosting provider serving in-addr.arpa/ip6.arpa PTR records
    plus per-network contact zones whose SOA RNAME names the operator
    mailbox — the substrate Section 5.2.1's outreach walked."""
    hosting = AuthoritativeServer(
        "rdns-hosting", INFRA_ASN, Random(rng.randrange(2**32)),
        profile=os_profile("freebsd"),
    )
    hosting_addr = ip_address(int(ip_address("20.0.0.0")) + 45)
    fabric.attach(hosting, hosting_addr)

    rev4 = Zone(
        name("in-addr.arpa."),
        _soa("in-addr.arpa.", "hosting.example.", "dns.hosting.example."),
    )
    rev6 = Zone(
        name("ip6.arpa."),
        _soa("ip6.arpa.", "hosting.example.", "dns.hosting.example."),
    )
    hosting.add_zone(rev4)
    hosting.add_zone(rev6)

    from ..dns.rr import PTR

    contact_zones: dict[int, Zone] = {}
    ptr_rng = Random(rng.randrange(2**32))
    for index, info in enumerate(truth.resolvers):
        if ptr_rng.random() >= PTR_COVERAGE:
            continue
        domain = name(f"as{info.asn}-net.example.")
        zone = contact_zones.get(info.asn)
        if zone is None:
            zone = Zone(
                domain,
                _soa(
                    str(domain),
                    f"ns.as{info.asn}-net.example.",
                    f"noc.as{info.asn}-net.example.",
                ),
            )
            contact_zones[info.asn] = zone
            hosting.add_zone(zone)
        ptr_target = domain.child(f"resolver{index}")
        info.contact_mailbox = f"noc@as{info.asn}-net.example"
        for address in info.addresses:
            rev_zone = rev4 if address.version == 4 else rev6
            rev_zone.add(
                RR(
                    Name.from_text(address.reverse_pointer),
                    RRType.PTR,
                    1,
                    3600,
                    PTR(ptr_target),
                )
            )
    return hosting


# ---------------------------------------------------------------------------
# IDS / analyst behaviour (Section 3.6.3)
# ---------------------------------------------------------------------------


class _AnalystWorkstation(Host):
    """Sends direct follow-the-logs queries long after the original probe."""

    def __init__(self, asn: int, hash_seed: int) -> None:
        super().__init__("analyst", asn)
        self.hash_seed = hash_seed
        self.queries_sent = 0

    def resolve_later(self, qname: Name, auth_address: Address) -> None:
        # ID and port are hashed from the investigated name so the
        # analyst's behaviour is a pure function of what it looked at.
        key = stable_hash(self.hash_seed, "analyst", qname.to_wire())
        message = Message.make_query(key & 0xFFFF, qname, RRType.A)
        packet = Packet(
            src=self.addresses[0],
            dst=auth_address,
            sport=1024 + (key >> 16) % 64512,
            dport=53,
            payload=message.to_wire(),
            transport=Transport.UDP,
        )
        self.queries_sent += 1
        self.send(packet)


class _IDSTap:
    """Fabric tap: a fraction of spoofed queries entering monitored
    ASes get investigated by a human much later (Section 3.6.3).

    Which packets catch an analyst's eye — and how long the human takes
    — is decided by hashing the packet itself rather than consuming a
    shared RNG stream, so monitored ASes behave identically whether the
    campaign runs in one process or is partitioned across shard workers.
    A class (not a closure) so the tap survives scenario serialization
    into the compiled artifact shard workers load.
    """

    def __init__(
        self,
        params: ScenarioParams,
        analyst: _AnalystWorkstation,
        auth_v4: Address,
        domain: Name,
        loop,
        ids_asns: set[int],
    ) -> None:
        self.params = params
        self.analyst = analyst
        self.auth_v4 = auth_v4
        self.domain = domain
        self.loop = loop
        self.ids_asns = ids_asns

    def __call__(self, packet: Packet, target: Host) -> None:
        if target.asn not in self.ids_asns or packet.dport != 53:
            return
        params = self.params
        seed = params.seed
        noticed = stable_fraction(
            seed, "ids-notice",
            int(packet.src), int(packet.dst),
            packet.sport, packet.dport, packet.payload,
        )
        if noticed >= params.analyst_probability:
            return
        try:
            message = Message.from_wire(packet.payload)
        except ValueError:
            return
        if message.question is None or message.is_response:
            return
        qname = message.question.qname
        if not qname.is_subdomain_of(self.domain):
            return
        delay = params.analyst_delay_min + stable_fraction(
            seed, "ids-delay", packet.payload
        ) * (params.analyst_delay_max - params.analyst_delay_min)
        analyst, auth_v4 = self.analyst, self.auth_v4
        self.loop.schedule(
            delay, lambda: analyst.resolve_later(qname, auth_v4)
        )


def _install_ids(
    scenario: BuiltScenario, ids_asns: set[int], infra: _Infra
) -> None:
    """Wire the :class:`_IDSTap` over the monitored ASes."""
    params = scenario.params
    analyst = _AnalystWorkstation(INFRA_ASN, params.seed)
    analyst_v4 = ip_address(
        int(ip_address("20.0.0.0")) + 250  # inside the infra /20
    )
    scenario.fabric.attach(analyst, analyst_v4)
    auth_v4 = infra.auth_servers[0].addresses[0]
    scenario.fabric.add_tap(
        _IDSTap(
            params, analyst, auth_v4, scenario.codec.domain,
            scenario.fabric.loop, ids_asns,
        )
    )
