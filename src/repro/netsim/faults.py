"""Deterministic fault injection: the chaos side of the fabric.

The paper's six-week campaign ran over a hostile substrate — lossy
paths, rate-limited resolvers, partial outages, collector crashes.  This
module lets a reproduction *schedule* that hostility: a serializable
:class:`FaultPlan` composes windowed fault clauses (burst loss between
AS pairs, blackholed prefixes, resolver outages and slowdowns, packet
duplication, reordering jitter, BGP route dynamics — withdrawals,
prefix hijacks, stuck routes — and scripted shard-worker crashes) that
the fabric and the pipeline replay exactly.

Determinism contract
--------------------

Every per-packet decision a clause makes is keyed with
:func:`~repro.netsim.determinism.stable_fraction` on ``(plan seed,
clause index, packet content)`` — never a consumed RNG stream — so an
N-shard faulted run replays byte-identically to the 1-shard run, and a
re-executed crashed shard suffers exactly the losses the first attempt
did.  A plan with no clauses compiles to ``None`` and leaves the fabric
untouched, so the zero-fault run is bit-for-bit the unfaulted run.

The plan is JSON all the way down: ``FaultPlan.load`` / ``save`` round
trip the schema-versioned payload the pipeline stores as the
``faults.json`` run artifact.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass
from ipaddress import ip_address, ip_network
from pathlib import Path
from typing import Any

from .determinism import stable_fraction

#: Version stamped into every serialized plan; readers refuse others.
FAULT_SCHEMA_VERSION = 1


def plan_digest(payload: dict) -> str:
    """Content address of a serialized fault plan.

    Canonical-JSON sha256 over the full payload (seed included), so two
    plans with identical clauses but different seeds — which inject
    different packet fates — digest differently.  This is the identity
    the results provenance and the cross-run ledger carry.
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def reseed_payload(payload: dict, seed: int) -> dict:
    """The same clauses under a different seed — new packet fates.

    Longitudinal campaigns use this for per-epoch fault scheduling (the
    ``fault-cycle`` evolution clause): the plan's structure is held
    fixed while every content-keyed roll re-keys, giving each epoch its
    own network weather.  The payload is round-tripped through
    :class:`FaultPlan` so malformed input fails here, not mid-epoch.
    """
    return FaultPlan.from_payload(payload).with_seed(seed).to_payload()

#: Shard-crash behaviours (see :class:`ShardCrash`).
CRASH_MODES = ("kill", "raise", "hang")


class ShardCrashInjected(RuntimeError):
    """Raised by an inline shard when a ``shard-crash`` clause fires."""

    def __init__(self, shard: int, clause_index: int) -> None:
        super().__init__(
            f"injected crash: shard {shard} hit shard-crash clause "
            f"{clause_index}"
        )
        self.shard = shard
        self.clause_index = clause_index


def _window_contains(start: float, end: float | None, t: float) -> bool:
    return t >= start and (end is None or t < end)


@dataclass(frozen=True)
class BurstLoss:
    """Windowed loss burst, optionally scoped to an AS pair.

    ``src_asn`` / ``dst_asn`` of ``None`` are wildcards; the rate stacks
    on top of the fabric's builtin ``loss_rate`` (independent rolls).
    """

    rate: float
    start: float = 0.0
    end: float | None = None
    src_asn: int | None = None
    dst_asn: int | None = None


@dataclass(frozen=True)
class Blackhole:
    """Null-route every packet whose destination falls in ``prefix``."""

    prefix: str
    start: float = 0.0
    end: float | None = None


@dataclass(frozen=True)
class ResolverOutage:
    """Drop every packet addressed to ``address`` during the window."""

    address: str
    start: float = 0.0
    end: float | None = None


@dataclass(frozen=True)
class ResolverSlowdown:
    """Multiply delivery latency toward ``address`` by ``factor``."""

    address: str
    factor: float
    start: float = 0.0
    end: float | None = None


@dataclass(frozen=True)
class Duplicate:
    """Deliver a second copy of a fraction of packets, ``delay`` later."""

    rate: float
    delay: float = 0.050
    start: float = 0.0
    end: float | None = None


@dataclass(frozen=True)
class Reorder:
    """Add up to ``jitter`` seconds of extra delay to a packet fraction.

    Delaying one packet past its neighbours is exactly how reordering
    manifests to endpoints, so jitter is the whole mechanism.
    """

    rate: float
    jitter: float
    start: float = 0.0
    end: float | None = None


@dataclass(frozen=True)
class RouteWithdrawal:
    """Withdraw ``prefix`` from the routing table at sim time ``at``.

    Packets toward the prefix drop with ``no-route`` until
    ``restore_at`` (if given) re-installs the original announcement.
    The mutation is applied lazily when the first packet at or past
    ``at`` enters the fabric, so it is a pure function of packet
    timestamps and replays identically at any shard count.
    """

    prefix: str
    at: float = 0.0
    restore_at: float | None = None


@dataclass(frozen=True)
class PrefixHijack:
    """Announce ``prefix`` from ``by_asn`` during ``[at, end)``.

    The hijacker's announcement displaces (or shadows, for a
    more-specific) the legitimate origin: lookups resolve to
    ``by_asn``, packets walk the policy path toward the hijacker and
    are swallowed there with ``fault-hijacked``.  ``end`` of ``None``
    leaves the hijack in place for the rest of the run.
    """

    prefix: str
    by_asn: int
    at: float = 0.0
    end: float | None = None


@dataclass(frozen=True)
class StuckRoute:
    """Model slow convergence: a dead route that lingers in the table.

    The origin of ``prefix`` goes dark at ``at`` but the announcement
    stays installed for ``linger`` seconds — packets still forward
    along the stale path and drop with ``fault-stuck-route`` — before
    the withdrawal finally propagates and subsequent packets see
    ``no-route``.
    """

    prefix: str
    at: float = 0.0
    linger: float = 30.0


@dataclass(frozen=True)
class ShardCrash:
    """Kill shard ``shard``'s worker after it sends ``after_probes``.

    ``times`` bounds how often the clause fires across re-executions
    (the worker leaves a marker file per firing, so a re-run of the
    same shard does not crash forever).  ``mode`` picks the failure:
    ``kill`` SIGKILLs the worker process (inline shards downgrade to
    ``raise``), ``raise`` throws :class:`ShardCrashInjected`, ``hang``
    stops making progress so the parent's heartbeat monitor must act.
    """

    shard: int
    after_probes: int
    times: int = 1
    mode: str = "kill"


#: kind string -> clause class, the serialization dispatch table.
_CLAUSE_KINDS = {
    "burst-loss": BurstLoss,
    "blackhole": Blackhole,
    "resolver-outage": ResolverOutage,
    "resolver-slowdown": ResolverSlowdown,
    "duplicate": Duplicate,
    "reorder": Reorder,
    "route-withdrawal": RouteWithdrawal,
    "prefix-hijack": PrefixHijack,
    "stuck-route": StuckRoute,
    "shard-crash": ShardCrash,
}
_KIND_BY_CLASS = {cls: kind for kind, cls in _CLAUSE_KINDS.items()}


def _validate_clause(index: int, clause) -> None:
    def fail(message: str) -> None:
        kind = _KIND_BY_CLASS[type(clause)]
        raise ValueError(f"fault clause {index} ({kind}): {message}")

    start = getattr(clause, "start", None)
    end = getattr(clause, "end", None)
    if start is not None:
        if start < 0:
            fail(f"negative window start {start}")
        if end is not None and end <= start:
            fail(f"empty window [{start}, {end})")
    rate = getattr(clause, "rate", None)
    if rate is not None and not 0.0 < rate <= 1.0:
        fail(f"rate {rate} outside (0, 1]")
    if isinstance(clause, Blackhole):
        ip_network(clause.prefix)  # raises ValueError on garbage
    if isinstance(clause, (ResolverOutage, ResolverSlowdown)):
        ip_address(clause.address)
    if isinstance(clause, ResolverSlowdown) and clause.factor <= 1.0:
        fail(f"factor {clause.factor} must exceed 1")
    if isinstance(clause, Duplicate) and clause.delay <= 0:
        fail(f"duplicate delay {clause.delay} must be positive")
    if isinstance(clause, Reorder) and clause.jitter <= 0:
        fail(f"jitter {clause.jitter} must be positive")
    if isinstance(clause, (RouteWithdrawal, PrefixHijack, StuckRoute)):
        ip_network(clause.prefix)  # raises ValueError on garbage
        if clause.at < 0:
            fail(f"negative event time {clause.at}")
    if isinstance(clause, RouteWithdrawal):
        if clause.restore_at is not None and clause.restore_at <= clause.at:
            fail(
                f"restore_at {clause.restore_at} must follow at {clause.at}"
            )
    if isinstance(clause, PrefixHijack):
        if clause.by_asn < 1:
            fail(f"invalid hijacking ASN {clause.by_asn}")
        if clause.end is not None and clause.end <= clause.at:
            fail(f"empty hijack window [{clause.at}, {clause.end})")
    if isinstance(clause, StuckRoute) and clause.linger <= 0:
        fail(f"linger {clause.linger} must be positive")
    if isinstance(clause, ShardCrash):
        if clause.shard < 0:
            fail(f"negative shard {clause.shard}")
        if clause.after_probes < 1:
            fail("after_probes must be >= 1")
        if clause.times < 1:
            fail("times must be >= 1")
        if clause.mode not in CRASH_MODES:
            fail(f"mode {clause.mode!r} not in {CRASH_MODES}")


@dataclass
class FaultPlan:
    """A named, seeded composition of fault clauses.

    ``seed`` keys every clause roll; two plans with the same clauses
    but different seeds inject different (but each fully deterministic)
    packet fates.
    """

    seed: int = 0
    name: str = ""
    clauses: list = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.clauses is None:
            self.clauses = []
        for index, clause in enumerate(self.clauses):
            if type(clause) not in _KIND_BY_CLASS:
                raise ValueError(
                    f"fault clause {index}: unknown clause {clause!r}"
                )
            _validate_clause(index, clause)

    # -- serialization ---------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        clauses = []
        for clause in self.clauses:
            payload = {"kind": _KIND_BY_CLASS[type(clause)]}
            payload.update(vars(clause))
            clauses.append(payload)
        return {
            "schema_version": FAULT_SCHEMA_VERSION,
            "seed": self.seed,
            "name": self.name,
            "clauses": clauses,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FaultPlan":
        version = payload.get("schema_version")
        if version != FAULT_SCHEMA_VERSION:
            raise ValueError(
                f"fault plan has schema_version={version!r}, this code "
                f"reads version {FAULT_SCHEMA_VERSION}"
            )
        clauses = []
        for index, item in enumerate(payload.get("clauses", [])):
            kind = item.get("kind")
            clause_cls = _CLAUSE_KINDS.get(kind)
            if clause_cls is None:
                raise ValueError(
                    f"fault clause {index}: unknown kind {kind!r} "
                    f"(known: {sorted(_CLAUSE_KINDS)})"
                )
            fields = {k: v for k, v in item.items() if k != "kind"}
            try:
                clauses.append(clause_cls(**fields))
            except TypeError as exc:
                raise ValueError(f"fault clause {index} ({kind}): {exc}")
        return cls(
            seed=payload.get("seed", 0),
            name=payload.get("name", ""),
            clauses=clauses,
        )

    @classmethod
    def load(cls, path) -> "FaultPlan":
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})")
        return cls.from_payload(payload)

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_payload(), indent=2) + "\n")

    def digest(self) -> str:
        """Content address of this plan (see :func:`plan_digest`)."""
        return plan_digest(self.to_payload())

    def with_seed(self, seed: int) -> "FaultPlan":
        """A copy of this plan rolling its fates under *seed*."""
        return FaultPlan(
            seed=int(seed), name=self.name, clauses=self.clauses
        )

    # -- queries ---------------------------------------------------------

    def crash_clauses(self, shard: int) -> list[tuple[int, ShardCrash]]:
        """``(clause index, clause)`` pairs targeting *shard*."""
        return [
            (index, clause)
            for index, clause in enumerate(self.clauses)
            if isinstance(clause, ShardCrash) and clause.shard == shard
        ]

    def compile(self) -> "FaultInjector | None":
        """Build the packet-path injector, or ``None`` if nothing to do.

        Shard-crash clauses live in the pipeline, not the packet path;
        a plan containing only those (or nothing) leaves the fabric
        untouched, which is what makes the zero-fault run byte-identical
        to an unfaulted one.
        """
        packet_clauses = [
            (index, clause)
            for index, clause in enumerate(self.clauses)
            if not isinstance(clause, ShardCrash)
        ]
        if not packet_clauses:
            return None
        return FaultInjector(self.seed, packet_clauses)


class FaultInjector:
    """Compiled packet-path view of a plan, installed on a ``Fabric``.

    The fabric consults :meth:`drop_reason` once per deliverable packet
    and :meth:`delivery_mods` once per delivery; both are pure functions
    of (plan seed, clause, packet content, window), so installation
    never perturbs determinism — only fates.
    """

    __slots__ = (
        "seed",
        "_bursts",
        "_blackholes",
        "_outages",
        "_slowdowns",
        "_duplicates",
        "_reorders",
        "_stucks",
        "_hijacks",
        "_route_events",
        "_route_cursor",
        "next_route_event",
        "_displaced",
        "injections",
        "_mx_injections",
    )

    def __init__(self, seed: int, clauses: list[tuple[int, Any]]) -> None:
        self.seed = seed
        self._bursts: list[tuple[int, BurstLoss]] = []
        #: (index, version, lo, hi, start, end) per blackholed prefix.
        self._blackholes: list[tuple] = []
        self._outages: list[tuple] = []
        self._slowdowns: list[tuple] = []
        self._duplicates: list[tuple[int, Duplicate]] = []
        self._reorders: list[tuple[int, Reorder]] = []
        #: (version, lo, hi, start, end) windows where a stale route
        #: still forwards but the origin swallows the traffic.
        self._stucks: list[tuple] = []
        #: (version, lo, hi, start, end) windows owned by a hijacker.
        self._hijacks: list[tuple] = []
        #: (time, order, op, prefix, asn) announcements mutations,
        #: applied lazily in time order as packet timestamps pass them.
        self._route_events: list[tuple[float, int, str, str, int]] = []
        self._route_cursor = 0
        #: earliest unapplied route event; the fabric compares this to
        #: ``loop.now`` once per packet (one float compare).
        self.next_route_event = float("inf")
        #: prefix -> announcement displaced by a withdraw/hijack, so a
        #: restore re-installs exactly what was there.
        self._displaced: dict[str, Any] = {}
        #: injection counts by clause kind (mirrors the metric).
        self.injections: Counter = Counter()
        self._mx_injections = None
        for index, clause in clauses:
            if isinstance(clause, BurstLoss):
                self._bursts.append((index, clause))
            elif isinstance(clause, Blackhole):
                net = ip_network(clause.prefix)
                self._blackholes.append(
                    (
                        index,
                        net.version,
                        int(net.network_address),
                        int(net.broadcast_address),
                        clause.start,
                        clause.end,
                    )
                )
            elif isinstance(clause, ResolverOutage):
                self._outages.append(
                    (index, ip_address(clause.address), clause.start,
                     clause.end)
                )
            elif isinstance(clause, ResolverSlowdown):
                self._slowdowns.append(
                    (index, ip_address(clause.address), clause.factor,
                     clause.start, clause.end)
                )
            elif isinstance(clause, Duplicate):
                self._duplicates.append((index, clause))
            elif isinstance(clause, Reorder):
                self._reorders.append((index, clause))
            elif isinstance(clause, RouteWithdrawal):
                self._route_events.append(
                    (clause.at, index, "withdraw", clause.prefix, 0)
                )
                if clause.restore_at is not None:
                    self._route_events.append(
                        (clause.restore_at, index, "restore",
                         clause.prefix, 0)
                    )
            elif isinstance(clause, PrefixHijack):
                net = ip_network(clause.prefix)
                self._route_events.append(
                    (clause.at, index, "hijack", clause.prefix,
                     clause.by_asn)
                )
                if clause.end is not None:
                    self._route_events.append(
                        (clause.end, index, "unhijack", clause.prefix, 0)
                    )
                self._hijacks.append(
                    (
                        net.version,
                        int(net.network_address),
                        int(net.broadcast_address),
                        clause.at,
                        clause.end,
                    )
                )
            elif isinstance(clause, StuckRoute):
                net = ip_network(clause.prefix)
                self._route_events.append(
                    (clause.at + clause.linger, index, "withdraw",
                     clause.prefix, 0)
                )
                self._stucks.append(
                    (
                        net.version,
                        int(net.network_address),
                        int(net.broadcast_address),
                        clause.at,
                        clause.at + clause.linger,
                    )
                )
            else:  # pragma: no cover - compile() filters these
                raise TypeError(f"not a packet clause: {clause!r}")
        self._route_events.sort()
        if self._route_events:
            self.next_route_event = self._route_events[0][0]

    def apply_route_events(self, routes, now: float) -> None:
        """Apply every due announcement mutation to *routes*.

        Called by the fabric when ``next_route_event <= now``.  Events
        fire strictly in (time, clause index) order, so the table state
        any packet observes is a pure function of that packet's
        timestamp — the property that keeps N-shard faulted runs
        byte-identical to 1-shard.
        """
        events = self._route_events
        cursor = self._route_cursor
        while cursor < len(events) and events[cursor][0] <= now:
            _at, _index, op, prefix, asn = events[cursor]
            cursor += 1
            if op == "withdraw":
                displaced = routes.announcement_for(prefix)
                if displaced is not None:
                    self._displaced[prefix] = displaced
                    routes.withdraw(prefix)
            elif op == "restore":
                displaced = self._displaced.pop(prefix, None)
                if displaced is not None:
                    routes.announce(displaced.prefix, displaced.asn)
            elif op == "hijack":
                displaced = routes.announcement_for(prefix)
                if displaced is not None:
                    self._displaced[prefix] = displaced
                routes.announce(prefix, asn)
            else:  # unhijack
                routes.withdraw(prefix)
                displaced = self._displaced.pop(prefix, None)
                if displaced is not None:
                    routes.announce(displaced.prefix, displaced.asn)
        self._route_cursor = cursor
        self.next_route_event = (
            events[cursor][0] if cursor < len(events) else float("inf")
        )

    def bind_metrics(self, registry) -> None:
        """Count injections into *registry* from now on.

        Injections are content-keyed, so the counter is deterministic:
        shard merges sum to exactly the unsharded totals.
        """
        self._mx_injections = registry.counter(
            "fabric_fault_injections_total",
            "fault-plan clause firings, by clause kind",
            ("kind",),
        )

    # -- per-packet decisions --------------------------------------------

    def _roll(self, index: int, packet) -> float:
        """One clause's uniform roll for *packet*, content-keyed."""
        return stable_fraction(
            self.seed,
            "fault",
            index,
            int(packet.src),
            int(packet.dst),
            packet.sport,
            packet.dport,
            packet.transport.value,
            packet.payload,
        )

    def _record(self, kind: str) -> None:
        self.injections[kind] += 1
        mx = self._mx_injections
        if mx is not None:
            mx.inc(1, (kind,))

    def drop_reason(
        self, packet, src_asn: int, dst_asn: int, now: float
    ) -> str | None:
        """Drop verdict for *packet*, or ``None`` to let it through.

        Returns one of the ``fault-*`` drop reasons registered in
        :mod:`repro.netsim.fabric`.
        """
        dst_int = None
        for index, version, lo, hi, start, end in self._blackholes:
            if packet.dst.version != version:
                continue
            if not _window_contains(start, end, now):
                continue
            if dst_int is None:
                dst_int = int(packet.dst)
            if lo <= dst_int <= hi:
                self._record("blackhole")
                return "fault-blackhole"
        for version, lo, hi, start, end in self._stucks:
            if packet.dst.version != version:
                continue
            if not _window_contains(start, end, now):
                continue
            if dst_int is None:
                dst_int = int(packet.dst)
            if lo <= dst_int <= hi:
                self._record("stuck-route")
                return "fault-stuck-route"
        for version, lo, hi, start, end in self._hijacks:
            if packet.dst.version != version:
                continue
            if not _window_contains(start, end, now):
                continue
            if dst_int is None:
                dst_int = int(packet.dst)
            if lo <= dst_int <= hi:
                self._record("prefix-hijack")
                return "fault-hijacked"
        for index, address, start, end in self._outages:
            if packet.dst == address and _window_contains(start, end, now):
                self._record("resolver-outage")
                return "fault-outage"
        for index, clause in self._bursts:
            if not _window_contains(clause.start, clause.end, now):
                continue
            if clause.src_asn is not None and clause.src_asn != src_asn:
                continue
            if clause.dst_asn is not None and clause.dst_asn != dst_asn:
                continue
            if self._roll(index, packet) < clause.rate:
                self._record("burst-loss")
                return "fault-loss"
        return None

    def delivery_mods(
        self, packet, src_asn: int, dst_asn: int, now: float
    ) -> tuple[float, float, float | None, list[str]] | None:
        """Latency/duplication adjustments for a surviving packet.

        Returns ``(latency_factor, extra_delay, duplicate_delay,
        kinds)`` or ``None`` when no clause touches this packet —
        ``None`` keeps the common case allocation-free.
        """
        factor = 1.0
        extra = 0.0
        duplicate_delay = None
        kinds: list[str] | None = None
        for index, address, slow, start, end in self._slowdowns:
            if packet.dst == address and _window_contains(start, end, now):
                factor *= slow
                self._record("resolver-slowdown")
                kinds = (kinds or []) + ["resolver-slowdown"]
        for index, clause in self._reorders:
            if not _window_contains(clause.start, clause.end, now):
                continue
            roll = self._roll(index, packet)
            if roll < clause.rate:
                # Re-scale the winning roll into [0, 1) for the jitter
                # magnitude so one hash decides both fire-and-size.
                extra += clause.jitter * (roll / clause.rate)
                self._record("reorder")
                kinds = (kinds or []) + ["reorder"]
        for index, clause in self._duplicates:
            if not _window_contains(clause.start, clause.end, now):
                continue
            if self._roll(index, packet) < clause.rate:
                duplicate_delay = clause.delay
                self._record("duplicate")
                kinds = (kinds or []) + ["duplicate"]
        if kinds is None:
            return None
        return factor, extra, duplicate_delay, kinds
