"""Synthetic geolocation database standing in for MaxMind GeoLite2.

The paper looked up the country of every target IP address and
associated each AS with one or more countries based on the GeoIP of its
constituent addresses (an AS may therefore be counted in several
countries).  We reproduce exactly that semantics over a prefix→country
map populated by the scenario builder.

``COUNTRY_WEIGHTS`` encodes the relative AS-count mix of the paper's
Table 1 plus a long tail of small countries (the Table 2 flavour), so a
synthetic Internet draws countries with a realistic skew.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass, field
from random import Random

from .addresses import Address, Network
from .routing import RoutingTable

#: Relative weights for assigning countries to ASes, loosely matching the
#: AS-count ranking in Table 1 (large registries) with a small-country
#: tail (the Table 2 flavour: few ASes, high reachable fraction).
COUNTRY_WEIGHTS: dict[str, float] = {
    "US": 16782, "BR": 6468, "RU": 4937, "DE": 2470, "GB": 2246,
    "PL": 2041, "UA": 1709, "IN": 1592, "AU": 1562, "CA": 1519,
    "FR": 1300, "NL": 1100, "IT": 900, "JP": 850, "CN": 800,
    "ID": 700, "AR": 600, "ZA": 450, "TR": 400, "MX": 380,
    "DZ": 15, "MA": 22, "SZ": 7, "BZ": 30, "BF": 14,
    "XK": 5, "BA": 48, "SC": 25, "WF": 1, "CI": 15,
}

#: Countries whose networks, in the paper's data, were disproportionately
#: reachable (Table 2 lists Algeria and Morocco at >50% of addresses).
HIGH_EXPOSURE_COUNTRIES: frozenset[str] = frozenset(
    {"DZ", "MA", "SZ", "BZ", "BF", "XK", "BA", "SC", "WF", "CI"}
)


def draw_country(rng: Random) -> str:
    """Draw a country code from :data:`COUNTRY_WEIGHTS`."""
    codes = list(COUNTRY_WEIGHTS)
    weights = list(COUNTRY_WEIGHTS.values())
    return rng.choices(codes, weights=weights, k=1)[0]


@dataclass
class GeoDatabase:
    """Prefix-level country assignments with AS-level aggregation."""

    _prefix_country: dict[Network, str] = field(default_factory=dict)
    #: version -> (interval starts, interval ends, countries), compiled
    #: lazily; address lookups bisect this instead of scanning every
    #: assigned prefix with :mod:`ipaddress` containment checks.
    _compiled: dict[int, tuple[list[int], list[int], list[str]]] = field(
        default_factory=dict, repr=False
    )

    def assign(self, prefix: Network, country: str) -> None:
        """Record that *prefix* geolocates to *country* (ISO-3166 alpha-2)."""
        self._prefix_country[prefix] = country
        self._compiled.clear()

    def country_of_prefix(self, prefix: Network) -> str | None:
        """Return the assigned country of *prefix*, if known."""
        return self._prefix_country.get(prefix)

    def _compile(self, version: int) -> tuple[list[int], list[int], list[str]]:
        """Flatten one family's prefixes into disjoint sorted intervals.

        The same nesting-stack sweep as ``RoutingTable.compile``: CIDR
        prefixes are disjoint or nested, so sorting by (start, prefixlen)
        and unwinding a containment stack yields most-specific coverage.
        """
        spans = sorted(
            (
                int(prefix.network_address),
                prefix.prefixlen,
                int(prefix.broadcast_address),
                country,
            )
            for prefix, country in self._prefix_country.items()
            if prefix.version == version
        )
        starts: list[int] = []
        ends: list[int] = []
        countries: list[str] = []

        def emit(start: int, end: int, country: str) -> None:
            if start > end:
                return
            if starts and ends[-1] == start - 1 and countries[-1] == country:
                ends[-1] = end
                return
            starts.append(start)
            ends.append(end)
            countries.append(country)

        stack: list[tuple[int, str]] = []
        cursor = 0
        for start, _prefixlen, end, country in spans:
            while stack and stack[-1][0] < start:
                top_end, top_country = stack.pop()
                emit(cursor, top_end, top_country)
                cursor = top_end + 1
            if stack and cursor < start:
                emit(cursor, start - 1, stack[-1][1])
            stack.append((end, country))
            cursor = start
        while stack:
            top_end, top_country = stack.pop()
            emit(cursor, top_end, top_country)
            cursor = top_end + 1
        compiled = (starts, ends, countries)
        self._compiled[version] = compiled
        return compiled

    def country_of_address(self, address: Address) -> str | None:
        """Return the country of the most specific prefix covering *address*."""
        compiled = self._compiled.get(address.version)
        if compiled is None:
            compiled = self._compile(address.version)
        starts, ends, countries = compiled
        value = int(address)
        index = bisect_right(starts, value) - 1
        if index >= 0 and value <= ends[index]:
            return countries[index]
        return None

    def countries_of_asn(self, asn: int, routes: RoutingTable) -> set[str]:
        """Return every country any of *asn*'s announced prefixes maps to.

        This mirrors the paper's method: "each AS was associated with one
        or more countries based on the GeoIP data for its constituent IP
        addresses" (Section 4), so one AS may appear under several
        countries in Tables 1 and 2.
        """
        countries: set[str] = set()
        for prefix in routes.prefixes_for_asn(asn):
            country = self._prefix_country.get(prefix)
            if country is not None:
                countries.add(country)
        return countries

    def asns_by_country(self, routes: RoutingTable) -> dict[str, set[int]]:
        """Return country → set of ASNs with at least one prefix there."""
        result: dict[str, set[int]] = defaultdict(set)
        for announcement in routes.announcements():
            country = self._prefix_country.get(announcement.prefix)
            if country is not None:
                result[country].add(announcement.asn)
        return dict(result)

    def __len__(self) -> int:
        return len(self._prefix_country)
