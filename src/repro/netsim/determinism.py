"""Content-keyed determinism helpers for shardable simulations.

The staged campaign pipeline partitions target ASes across worker
processes and merges their observations back into one result that must
be byte-identical to the unsharded run.  That is only possible when
every result-affecting random decision is a pure function of *what* is
being decided — the packet, the target, the query name — rather than a
position in a shared consumed RNG stream, whose state would depend on
which other shards' events interleaved before it.

This module is that contract in code: :func:`stable_hash` maps any
composition of primitive values to a 64-bit integer that is identical
across processes, platforms and Python invocations (unlike ``hash()``,
which is salted per process), and the helpers derive fractions, bounded
integers and seeded :class:`random.Random` streams from it.  Simulation
components that need randomness key it on their own content::

    roll = stable_fraction(seed, "loss", int(src), int(dst), payload)
    rng = derive_rng(seed, "shard", shard_id)
"""

from __future__ import annotations

from hashlib import blake2b
from random import Random

__all__ = [
    "derive_rng",
    "derive_seed",
    "stable_fraction",
    "stable_hash",
    "stable_range",
]

_SEPARATOR = b"\x1f"


def _encode_part(part) -> bytes:
    """Render one key component as unambiguous bytes.

    Each value is tagged with its type so e.g. the integer ``1`` and the
    string ``"1"`` never collide, and parts cannot run into each other.
    """
    if isinstance(part, bool):  # before int: bool is an int subclass
        return b"B" + (b"1" if part else b"0")
    if isinstance(part, int):
        return b"I" + str(part).encode("ascii")
    if isinstance(part, bytes):
        return b"Y" + part
    if isinstance(part, str):
        return b"S" + part.encode("utf-8")
    if isinstance(part, float):
        return b"F" + repr(part).encode("ascii")
    raise TypeError(f"unhashable key part for stable_hash: {part!r}")


def stable_hash(*parts) -> int:
    """Hash *parts* (ints, bytes, str, floats) to a stable 64-bit int.

    The digest is process-independent: the same parts give the same
    value in every worker, which is what lets sharded runs reproduce the
    unsharded run's per-packet decisions exactly.
    """
    digest = blake2b(
        _SEPARATOR.join(_encode_part(p) for p in parts), digest_size=8
    )
    return int.from_bytes(digest.digest(), "big")


def stable_fraction(*parts) -> float:
    """Map *parts* to a uniform float in ``[0, 1)``."""
    return stable_hash(*parts) / 2**64


def stable_range(bound: int, *parts) -> int:
    """Map *parts* to an integer in ``[0, bound)``.

    The modulo bias is below 2**-40 for any bound under 2**24, far
    beneath anything the simulation can observe.
    """
    if bound <= 0:
        raise ValueError("bound must be positive")
    return stable_hash(*parts) % bound


def derive_seed(*parts) -> int:
    """Derive an RNG seed from *parts* (e.g. ``(seed, shard_id)``)."""
    return stable_hash(*parts)


def derive_rng(*parts) -> Random:
    """Return a fresh :class:`random.Random` seeded from *parts*."""
    return Random(derive_seed(*parts))
