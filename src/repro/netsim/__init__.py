"""Simulated Internet substrate: addresses, routing, borders, delivery.

This package models exactly the properties of the Internet that the
paper's measurement depends on — prefix origination, OSAV/DSAV border
filtering, and best-effort datagram delivery — and nothing more.
"""

from .addresses import (
    LOOPBACK_V4,
    LOOPBACK_V6,
    PRIVATE_SOURCE_V4,
    PRIVATE_SOURCE_V6,
    Address,
    Network,
    is_loopback,
    is_private,
    is_special_purpose,
    iter_subnets,
    limited_subnets,
    random_host_in_subnet,
    subnet_of,
)
from .autonomous_system import AutonomousSystem, BorderVerdict
from .events import EventLoop, ScheduledEvent
from .fabric import Fabric, Host
from .geo import COUNTRY_WEIGHTS, GeoDatabase, draw_country
from .packet import Packet, TCPFlag, TCPSignature, Transport
from .routing import Announcement, RoutingTable
from .trace import (
    PacketTrace,
    TraceEntry,
    address_filter,
    host_filter,
    port_filter,
)

__all__ = [
    "LOOPBACK_V4",
    "LOOPBACK_V6",
    "PRIVATE_SOURCE_V4",
    "PRIVATE_SOURCE_V6",
    "Address",
    "Announcement",
    "AutonomousSystem",
    "BorderVerdict",
    "COUNTRY_WEIGHTS",
    "EventLoop",
    "Fabric",
    "GeoDatabase",
    "Host",
    "Network",
    "Packet",
    "PacketTrace",
    "RoutingTable",
    "TraceEntry",
    "address_filter",
    "host_filter",
    "port_filter",
    "ScheduledEvent",
    "TCPFlag",
    "TCPSignature",
    "Transport",
    "draw_country",
    "is_loopback",
    "is_private",
    "is_special_purpose",
    "iter_subnets",
    "limited_subnets",
    "random_host_in_subnet",
    "subnet_of",
]
