"""Packet model for the simulated Internet.

Packets carry real addresses, ports and payload bytes, plus the TCP/IP
header characteristics (initial TTL, window size, MSS, option layout)
that passive fingerprinting tools such as p0f key on.  The DNS layer
serializes messages to wire format and hands the bytes to this layer, so
the simulation moves actual byte strings end to end.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace

from .addresses import Address


class Transport(enum.Enum):
    """Transport protocol of a packet."""

    UDP = "udp"
    TCP = "tcp"


class TCPFlag(enum.IntFlag):
    """TCP control flags (subset relevant to the simulation)."""

    NONE = 0
    SYN = 0x02
    ACK = 0x10
    FIN = 0x01
    RST = 0x04


@dataclass(frozen=True, slots=True)
class TCPSignature:
    """TCP/IP header characteristics used for passive OS fingerprinting.

    These are the fields p0f derives its verdicts from: the initial IP
    time-to-live, the TCP window size (possibly expressed as a multiple
    of the MSS), the maximum segment size, the window scale factor, and
    the order of TCP options in the SYN segment.
    """

    initial_ttl: int
    window_size: int
    mss: int
    window_scale: int
    options: tuple[str, ...]

    def summary(self) -> str:
        """Return a compact, p0f-style textual signature."""
        opts = ",".join(self.options)
        return (
            f"{self.initial_ttl}:{self.window_size}:{self.mss}:"
            f"{self.window_scale}:{opts}"
        )


_packet_ids = itertools.count(1)


@dataclass(slots=True)
class Packet:
    """A single IP datagram (with UDP or TCP inside) in flight.

    ``src`` may be spoofed: the fabric delivers based on ``dst`` only, and
    validation (OSAV/DSAV) happens at network borders.  ``hops`` counts
    border crossings so receivers observe a decremented TTL, which the
    fingerprinting layer uses to estimate the sender's initial TTL.
    """

    src: Address
    dst: Address
    sport: int
    dport: int
    payload: bytes
    transport: Transport = Transport.UDP
    tcp_flags: TCPFlag = TCPFlag.NONE
    tcp_signature: TCPSignature | None = None
    ttl: int = 64
    hops: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.src.version != self.dst.version:
            raise ValueError(
                f"address family mismatch: {self.src} -> {self.dst}"
            )
        for port in (self.sport, self.dport):
            if not 0 <= port <= 65535:
                raise ValueError(f"port out of range: {port}")

    @property
    def version(self) -> int:
        """IP version (4 or 6) of the packet."""
        return self.src.version

    @property
    def observed_ttl(self) -> int:
        """TTL as seen by the receiver after ``hops`` border crossings."""
        return max(self.ttl - self.hops, 0)

    def reply(self, payload: bytes, **overrides: object) -> "Packet":
        """Build a response packet with src/dst and ports swapped.

        Keyword *overrides* are applied on top of the swapped fields,
        letting callers set e.g. ``tcp_flags`` on the reply.
        """
        fields: dict[str, object] = {
            "src": self.dst,
            "dst": self.src,
            "sport": self.dport,
            "dport": self.sport,
            "payload": payload,
            "transport": self.transport,
            "tcp_flags": TCPFlag.NONE,
            "tcp_signature": None,
            "ttl": 64,
            "hops": 0,
            "packet_id": next(_packet_ids),
        }
        fields.update(overrides)
        return Packet(**fields)  # type: ignore[arg-type]

    def hop(self, count: int = 1) -> "Packet":
        """Return a copy of the packet after *count* border crossings."""
        return replace(self, hops=self.hops + count)

    def flow(self) -> tuple[Address, int, Address, int, Transport]:
        """Return the 5-tuple identifying this packet's flow."""
        return (self.src, self.sport, self.dst, self.dport, self.transport)
