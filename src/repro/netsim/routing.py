"""BGP-style routing table with longest-prefix matching.

The global table maps announced prefixes to the autonomous system that
originates them.  Lookups use a binary radix trie over address bits, the
same structure production routers and tools like ``pyasn`` use, so both
insertion and longest-prefix match run in O(prefix length).

This is the component that stands in for the public BGP table the paper
consulted to map DITL source addresses to ASNs and to enumerate each
AS's announced prefixes (Section 3.2).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from ipaddress import ip_network

from .addresses import Address, Network


@dataclass(frozen=True, slots=True)
class Announcement:
    """A single BGP-style origination of *prefix* by *asn*."""

    prefix: Network
    asn: int

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"invalid ASN: {self.asn}")


class _TrieNode:
    """One node of the binary radix trie; ``announcement`` marks a route."""

    __slots__ = ("children", "announcement")

    def __init__(self) -> None:
        self.children: list[_TrieNode | None] = [None, None]
        self.announcement: Announcement | None = None


def _address_bits(value: int, width: int) -> Iterator[int]:
    """Yield the bits of *value* most-significant first over *width* bits."""
    for shift in range(width - 1, -1, -1):
        yield (value >> shift) & 1


@dataclass
class RoutingTable:
    """Longest-prefix-match table from announced prefixes to origin ASNs.

    IPv4 and IPv6 each get their own trie.  Duplicate announcements of
    the same prefix overwrite (last announcement wins), matching the
    "most recent RIB snapshot" semantics the paper's lookups rely on.
    """

    _roots: dict[int, _TrieNode] = field(
        default_factory=lambda: {4: _TrieNode(), 6: _TrieNode()}
    )
    _announcements: dict[Network, Announcement] = field(default_factory=dict)

    def announce(self, prefix: Network | str, asn: int) -> Announcement:
        """Install an origination of *prefix* by *asn*; return the entry."""
        if isinstance(prefix, str):
            prefix = ip_network(prefix)
        announcement = Announcement(prefix, asn)
        node = self._roots[prefix.version]
        bits = _address_bits(int(prefix.network_address), prefix.max_prefixlen)
        for _, bit in zip(range(prefix.prefixlen), bits):
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]  # type: ignore[assignment]
        node.announcement = announcement
        self._announcements[prefix] = announcement
        return announcement

    def withdraw(self, prefix: Network | str) -> bool:
        """Remove the announcement for *prefix*; return whether it existed."""
        if isinstance(prefix, str):
            prefix = ip_network(prefix)
        if prefix not in self._announcements:
            return False
        del self._announcements[prefix]
        node: _TrieNode | None = self._roots[prefix.version]
        bits = _address_bits(int(prefix.network_address), prefix.max_prefixlen)
        for _, bit in zip(range(prefix.prefixlen), bits):
            assert node is not None
            node = node.children[bit]
        assert node is not None
        node.announcement = None
        return True

    def lookup(self, address: Address) -> Announcement | None:
        """Return the longest-prefix-match announcement covering *address*."""
        node: _TrieNode | None = self._roots[address.version]
        best: Announcement | None = None
        for bit in _address_bits(int(address), address.max_prefixlen):
            assert node is not None
            if node.announcement is not None:
                best = node.announcement
            node = node.children[bit]
            if node is None:
                return best
        if node is not None and node.announcement is not None:
            best = node.announcement
        return best

    def origin_asn(self, address: Address) -> int | None:
        """Return the ASN originating the covering prefix, or ``None``."""
        announcement = self.lookup(address)
        return announcement.asn if announcement else None

    def prefixes_for_asn(self, asn: int) -> list[Network]:
        """Return every prefix currently originated by *asn*, sorted."""
        return sorted(
            (a.prefix for a in self._announcements.values() if a.asn == asn),
            key=lambda p: (p.version, int(p.network_address), p.prefixlen),
        )

    def announcements(self) -> Iterable[Announcement]:
        """Iterate over all installed announcements."""
        return self._announcements.values()

    def __len__(self) -> int:
        return len(self._announcements)

    def __contains__(self, prefix: Network) -> bool:
        return prefix in self._announcements
