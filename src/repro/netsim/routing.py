"""BGP-style routing table with longest-prefix matching.

The global table maps announced prefixes to the autonomous system that
originates them.  The mutable source of truth is a binary radix trie
over address bits — the structure production routers use, O(prefix
length) for insert and withdraw.  Lookups, however, go through a
pyasn-style *compiled* view: once announcements settle, each family's
prefixes flatten into sorted, disjoint integer ``(start, end)``
intervals searched with one :func:`bisect.bisect_right`, fronted by a
bounded per-address route cache.  Any ``announce``/``withdraw`` marks
the compiled view dirty and drops the cache; the next lookup recompiles
automatically, so callers never see a stale route and the packet hot
path (:meth:`Fabric.send <repro.netsim.fabric.Fabric.send>`) always
hits the flat table.

This is the component that stands in for the public BGP table the paper
consulted to map DITL source addresses to ASNs and to enumerate each
AS's announced prefixes (Section 3.2).
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from heapq import heappop, heappush
from ipaddress import ip_network
from typing import TYPE_CHECKING

from .addresses import Address, Network

if TYPE_CHECKING:
    from .topology import ASGraph


@dataclass(frozen=True, slots=True)
class Announcement:
    """A single BGP-style origination of *prefix* by *asn*."""

    prefix: Network
    asn: int

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"invalid ASN: {self.asn}")


class _TrieNode:
    """One node of the binary radix trie; ``announcement`` marks a route."""

    __slots__ = ("children", "announcement")

    def __init__(self) -> None:
        self.children: list[_TrieNode | None] = [None, None]
        self.announcement: Announcement | None = None


def _address_bits(value: int, width: int) -> Iterator[int]:
    """Yield the bits of *value* most-significant first over *width* bits."""
    for shift in range(width - 1, -1, -1):
        yield (value >> shift) & 1


#: Sentinel distinguishing "cached None" from "not cached".
_CACHE_MISS = object()

#: Ceiling on cached per-address routes; the cache is flushed wholesale
#: when it fills (simple, and a full flush is cheaper than eviction
#: bookkeeping at this size).
ROUTE_CACHE_LIMIT = 1 << 16


@dataclass
class RoutingTable:
    """Longest-prefix-match table from announced prefixes to origin ASNs.

    IPv4 and IPv6 each get their own trie (the mutable source of truth)
    plus a compiled flat interval view used by :meth:`lookup`.  Duplicate
    announcements of the same prefix overwrite (last announcement wins),
    matching the "most recent RIB snapshot" semantics the paper's
    lookups rely on.
    """

    _roots: dict[int, _TrieNode] = field(
        default_factory=lambda: {4: _TrieNode(), 6: _TrieNode()}
    )
    _announcements: dict[Network, Announcement] = field(default_factory=dict)
    #: version -> (starts, ends, announcements): disjoint sorted spans
    #: where each span maps to its most-specific covering announcement.
    _compiled: dict[
        int, tuple[list[int], list[int], list[Announcement]]
    ] = field(default_factory=dict, repr=False)
    _by_asn: dict[int, list[Network]] = field(default_factory=dict, repr=False)
    _dirty: bool = True
    _cache: dict[tuple[int, int], Announcement | None] = field(
        default_factory=dict, repr=False
    )
    #: optional route-cache instruments (see ``bind_metrics``); ``None``
    #: keeps the lookup fast path at one extra attribute check.
    _mx_hits: object | None = field(default=None, repr=False)
    _mx_misses: object | None = field(default=None, repr=False)
    #: optional AS-relationship graph + its compiled valley-free paths.
    #: ``None`` (the default) is the legacy star topology: every
    #: inter-AS packet crosses exactly the origin and destination
    #: borders, and nothing below changes behaviour.
    _graph: "ASGraph | None" = field(default=None, repr=False)
    _policy: "PolicyView | None" = field(default=None, repr=False)

    @property
    def policy(self) -> "PolicyView | None":
        """The compiled valley-free view, or ``None`` in star mode."""
        return self._policy

    @property
    def graph(self) -> "ASGraph | None":
        return self._graph

    def attach_graph(self, graph: "ASGraph") -> None:
        """Attach an AS-relationship graph and compile its path tables.

        The graph is immutable for the lifetime of a scenario, so the
        policy view compiles once here (at build time — the artifact
        then carries the tables) and is never invalidated by
        announcement churn: withdrawals and hijacks change *which
        origin* a lookup resolves to, not how ASes reach each other.
        """
        self._policy = PolicyView.compile(graph)
        self._graph = graph

    def as_path(
        self, src_asn: int, dst_asn: int
    ) -> tuple[tuple[int, ...], tuple[str, ...]] | None:
        """Valley-free AS path + per-hop relationship labels, or ``None``."""
        policy = self._policy
        if policy is None:
            return None
        return policy.as_path(src_asn, dst_asn)

    def announcement_for(self, prefix: Network | str) -> Announcement | None:
        """The exact-prefix announcement currently installed, if any."""
        if isinstance(prefix, str):
            prefix = ip_network(prefix)
        return self._announcements.get(prefix)

    def bind_metrics(self, registry) -> None:
        """Count route-cache hits/misses into *registry* from now on.

        Cache behaviour depends on how much other traffic shared the
        table (a shard sees only its own lookups), so these counters
        are excluded from shard-equivalence comparisons.
        """
        self._mx_hits = registry.counter(
            "routing_cache_hits_total",
            "compiled-LPM route cache hits",
            deterministic=False,
        )
        self._mx_misses = registry.counter(
            "routing_cache_misses_total",
            "compiled-LPM route cache misses (bisect lookups)",
            deterministic=False,
        )

    def announce(self, prefix: Network | str, asn: int) -> Announcement:
        """Install an origination of *prefix* by *asn*; return the entry."""
        if isinstance(prefix, str):
            prefix = ip_network(prefix)
        announcement = Announcement(prefix, asn)
        existing = self._announcements.get(prefix)
        if existing == announcement:
            # Identical re-announcement: the table's state is unchanged,
            # so don't invalidate the compiled view or drop the route
            # cache.  BGP fault clauses restore withdrawn/hijacked
            # prefixes mid-scan and must not pay a recompile when the
            # restore lands on an already-identical entry.
            return existing
        node = self._roots[prefix.version]
        bits = _address_bits(int(prefix.network_address), prefix.max_prefixlen)
        for _, bit in zip(range(prefix.prefixlen), bits):
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]  # type: ignore[assignment]
        node.announcement = announcement
        self._announcements[prefix] = announcement
        self._invalidate()
        return announcement

    def withdraw(self, prefix: Network | str) -> bool:
        """Remove the announcement for *prefix*; return whether it existed."""
        if isinstance(prefix, str):
            prefix = ip_network(prefix)
        if prefix not in self._announcements:
            return False
        del self._announcements[prefix]
        node: _TrieNode | None = self._roots[prefix.version]
        bits = _address_bits(int(prefix.network_address), prefix.max_prefixlen)
        for _, bit in zip(range(prefix.prefixlen), bits):
            assert node is not None
            node = node.children[bit]
        assert node is not None
        node.announcement = None
        self._invalidate()
        return True

    def _invalidate(self) -> None:
        self._dirty = True
        if self._cache:
            self._cache.clear()

    def compile(self) -> None:
        """Flatten the current announcements into the interval view.

        Prefixes of one family are proper CIDR sets — any two are
        disjoint or nested — so a single sweep with a nesting stack
        yields disjoint spans, each owned by its most-specific prefix.
        Runs in O(n log n); called automatically from :meth:`lookup`
        when the table is dirty, or explicitly to pre-warm.
        """
        compiled: dict[
            int, tuple[list[int], list[int], list[Announcement]]
        ] = {}
        by_asn: dict[int, list[Network]] = {}
        for announcement in self._announcements.values():
            by_asn.setdefault(announcement.asn, []).append(
                announcement.prefix
            )
        for prefixes in by_asn.values():
            prefixes.sort(
                key=lambda p: (p.version, int(p.network_address), p.prefixlen)
            )
        for version in (4, 6):
            spans = sorted(
                (
                    int(a.prefix.network_address),
                    a.prefix.prefixlen,
                    int(a.prefix.broadcast_address),
                    a,
                )
                for a in self._announcements.values()
                if a.prefix.version == version
            )
            starts: list[int] = []
            ends: list[int] = []
            owners: list[Announcement] = []

            def emit(s: int, e: int, owner: Announcement) -> None:
                if s <= e:
                    starts.append(s)
                    ends.append(e)
                    owners.append(owner)

            stack: list[tuple[int, Announcement]] = []
            cursor = 0
            for start, _prefixlen, end, announcement in spans:
                while stack and stack[-1][0] < start:
                    top_end, top_ann = stack.pop()
                    emit(cursor, top_end, top_ann)
                    cursor = top_end + 1
                if stack and cursor < start:
                    emit(cursor, start - 1, stack[-1][1])
                stack.append((end, announcement))
                cursor = start
            while stack:
                top_end, top_ann = stack.pop()
                emit(cursor, top_end, top_ann)
                cursor = top_end + 1
            compiled[version] = (starts, ends, owners)
        self._compiled = compiled
        self._by_asn = by_asn
        self._dirty = False

    def lookup(self, address: Address) -> Announcement | None:
        """Return the longest-prefix-match announcement covering *address*.

        Fast path: bounded route cache, then one bisect over the
        compiled intervals (recompiling first if announcements changed).
        """
        value = int(address)
        key = (address.version, value)
        cached = self._cache.get(key, _CACHE_MISS)
        if cached is not _CACHE_MISS:
            mx = self._mx_hits
            if mx is not None:
                mx.inc()
            return cached  # type: ignore[return-value]
        mx = self._mx_misses
        if mx is not None:
            mx.inc()
        if self._dirty:
            self.compile()
        starts, ends, owners = self._compiled[address.version]
        index = bisect_right(starts, value) - 1
        announcement = (
            owners[index] if index >= 0 and value <= ends[index] else None
        )
        if len(self._cache) >= ROUTE_CACHE_LIMIT:
            self._cache.clear()
        self._cache[key] = announcement
        return announcement

    def lookup_uncompiled(self, address: Address) -> Announcement | None:
        """Reference longest-prefix match via the radix trie.

        Kept as the independent oracle the compiled view is checked
        against (property tests) and as the baseline the pipeline
        benchmark measures speedups from.
        """
        node: _TrieNode | None = self._roots[address.version]
        best: Announcement | None = None
        for bit in _address_bits(int(address), address.max_prefixlen):
            assert node is not None
            if node.announcement is not None:
                best = node.announcement
            node = node.children[bit]
            if node is None:
                return best
        if node is not None and node.announcement is not None:
            best = node.announcement
        return best

    def origin_asn(self, address: Address) -> int | None:
        """Return the ASN originating the covering prefix, or ``None``."""
        announcement = self.lookup(address)
        return announcement.asn if announcement else None

    def prefixes_for_asn(self, asn: int) -> list[Network]:
        """Return every prefix currently originated by *asn*, sorted."""
        if self._dirty:
            self.compile()
        return list(self._by_asn.get(asn, ()))

    def announcements(self) -> Iterable[Announcement]:
        """Iterate over all installed announcements."""
        return self._announcements.values()

    def __len__(self) -> int:
        return len(self._announcements)

    def __contains__(self, prefix: Network) -> bool:
        return prefix in self._announcements


#: Unreachable-distance sentinel in the compiled policy tables.
_UNREACHABLE = 1 << 30

#: Ceiling on memoized (src, dst) AS paths; flushed wholesale like the
#: route cache.  Never invalidated: the graph is immutable per scenario.
PATH_CACHE_LIMIT = 1 << 16


class PolicyView:
    """Valley-free (Gao–Rexford) forwarding state compiled from a graph.

    BGP policy routing in the standard model: every AS prefers routes
    learned from customers over routes from peers over routes from
    providers (classes 1/2/3 below), breaks ties by AS-path length and
    then by lowest next-hop ASN, and exports customer routes to
    everyone but peer/provider routes only to its customers — the
    Gao–Rexford conditions that make every used path *valley-free*
    (once a path goes peer→peer or provider→customer it may only
    continue provider→customer).

    Compilation runs the textbook per-destination propagation over the
    **transit skeleton** — every AS with customers, peers, or anything
    other than exactly one provider — in three stages (customer-route
    BFS up provider links, one peer-exchange round, provider-route
    Dijkstra down customer links).  Stub ASes hang off a single
    provider, so their best paths are their provider's best paths
    extended by one hop, uniformly in both class and length; the
    decomposition is therefore *exact*, not an approximation, which the
    property tests check against a brute-force oracle.

    Per-packet work is array chasing only: ``as_path`` walks the
    precomputed next-hop columns (one O(1) index per hop) behind a
    bounded memo — no graph search ever runs at packet time.
    """

    __slots__ = (
        "graph",
        "_transit",
        "_index",
        "_stub_provider",
        "_tables",
        "_path_cache",
    )

    def __init__(
        self,
        graph: "ASGraph",
        transit: list[int],
        stub_provider: dict[int, int],
        tables: list[tuple[list[int], list[int], list[int]]],
    ) -> None:
        self.graph = graph
        self._transit = transit
        self._index = {asn: i for i, asn in enumerate(transit)}
        self._stub_provider = stub_provider
        self._tables = tables
        self._path_cache: dict[
            tuple[int, int], tuple[tuple[int, ...], tuple[str, ...]] | None
        ] = {}

    def __reduce__(self):
        return (
            self.__class__,
            (self.graph, self._transit, self._stub_provider, self._tables),
        )

    @classmethod
    def compile(cls, graph: "ASGraph") -> "PolicyView":
        """Run per-destination Gao–Rexford propagation over the skeleton."""
        transit = graph.transit_asns()
        index = {asn: i for i, asn in enumerate(transit)}
        stub_provider = {
            asn: graph.providers[asn][0]
            for asn in graph.tiers
            if asn not in index
        }
        n = len(transit)
        providers_idx: list[list[int]] = [[] for _ in range(n)]
        customers_idx: list[list[int]] = [[] for _ in range(n)]
        peers_idx: list[list[int]] = [[] for _ in range(n)]
        for asn, i in index.items():
            for p in graph.providers.get(asn, ()):
                pi = index.get(p)
                if pi is not None:
                    providers_idx[i].append(pi)
            for c in graph.customers.get(asn, ()):
                ci = index.get(c)
                if ci is not None:
                    customers_idx[i].append(ci)
            for q in graph.peers.get(asn, ()):
                qi = index.get(q)
                if qi is not None:
                    peers_idx[i].append(qi)

        tables = [
            cls._propagate(
                ti, n, transit, providers_idx, customers_idx, peers_idx
            )
            for ti in range(n)
        ]
        return cls(graph, transit, stub_provider, tables)

    @staticmethod
    def _propagate(
        ti: int,
        n: int,
        transit: list[int],
        providers_idx: list[list[int]],
        customers_idx: list[list[int]],
        peers_idx: list[list[int]],
    ) -> tuple[list[int], list[int], list[int]]:
        """Best (class, length, next-hop) from every AS toward ``transit[ti]``.

        Classes: 0 self, 1 customer route, 2 peer route, 3 provider
        route, 4 unreachable.  Ties break by length then by lowest
        next-hop ASN, all deterministically — no RNG anywhere.
        """
        cls_ = [4] * n
        dist = [_UNREACHABLE] * n
        nxt = [-1] * n
        cls_[ti] = 0
        dist[ti] = 0

        # Stage 1 — customer routes climb provider links from the
        # destination, level-synchronous BFS (shortest wins; equal
        # levels prefer the lowest learning-customer ASN).
        level = [ti]
        depth = 0
        while level:
            depth += 1
            candidates: dict[int, int] = {}
            for xi in level:
                for pi in providers_idx[xi]:
                    if dist[pi] != _UNREACHABLE:
                        continue
                    best = candidates.get(pi)
                    if best is None or transit[xi] < transit[best]:
                        candidates[pi] = xi
            for pi, via in candidates.items():
                cls_[pi] = 1
                dist[pi] = depth
                nxt[pi] = via
            level = sorted(candidates)

        # Stage 2 — one peer exchange: a peer exports only its
        # customer routes (and itself).
        peer_grants: list[tuple[int, int, int]] = []
        for yi in range(n):
            if dist[yi] != _UNREACHABLE:
                continue
            best_key = None
            best_via = -1
            for qi in peers_idx[yi]:
                if cls_[qi] <= 1:
                    key = (dist[qi] + 1, transit[qi])
                    if best_key is None or key < best_key:
                        best_key = key
                        best_via = qi
            if best_key is not None:
                peer_grants.append((yi, best_key[0], best_via))
        for yi, d, via in peer_grants:
            cls_[yi] = 2
            dist[yi] = d
            nxt[yi] = via

        # Stage 3 — provider routes cascade down customer links from
        # every AS that already selected a route (Dijkstra; ties
        # prefer the lowest providing ASN, first-pop wins).
        heap: list[tuple[int, int, int, int]] = []
        for xi in range(n):
            if cls_[xi] <= 2:
                for ci in customers_idx[xi]:
                    if cls_[ci] > 2:
                        heappush(
                            heap, (dist[xi] + 1, transit[xi], ci, xi)
                        )
        while heap:
            d, _via_asn, ci, from_xi = heappop(heap)
            if cls_[ci] <= 2 or dist[ci] <= d:
                continue
            cls_[ci] = 3
            dist[ci] = d
            nxt[ci] = from_xi
            for c2 in customers_idx[ci]:
                if cls_[c2] > 2 and dist[c2] > d + 1:
                    heappush(heap, (d + 1, transit[ci], c2, ci))
        return cls_, dist, nxt

    def as_path(
        self, src_asn: int, dst_asn: int
    ) -> tuple[tuple[int, ...], tuple[str, ...]] | None:
        """``(hops, rels)`` for src→dst, or ``None`` if policy-unreachable.

        ``hops`` runs from the source AS to the destination AS
        inclusive; ``rels[i]`` labels ``hops[i+1]`` from ``hops[i]``'s
        perspective (``provider``/``peer``/``customer``).
        """
        key = (src_asn, dst_asn)
        cached = self._path_cache.get(key, _CACHE_MISS)
        if cached is not _CACHE_MISS:
            return cached  # type: ignore[return-value]
        result = self._assemble(src_asn, dst_asn)
        if len(self._path_cache) >= PATH_CACHE_LIMIT:
            self._path_cache.clear()
        self._path_cache[key] = result
        return result

    def _assemble(
        self, src_asn: int, dst_asn: int
    ) -> tuple[tuple[int, ...], tuple[str, ...]] | None:
        if src_asn == dst_asn:
            return (src_asn,), ()
        index = self._index
        hops: list[int] = []
        entry = src_asn
        if src_asn not in index:
            provider = self._stub_provider.get(src_asn)
            if provider is None:
                return None
            hops.append(src_asn)
            entry = provider
        exit_ = dst_asn
        if dst_asn not in index:
            provider = self._stub_provider.get(dst_asn)
            if provider is None:
                return None
            exit_ = provider
        ei = index[entry]
        xi = index[exit_]
        _cls, dist, nxt = self._tables[xi]
        if dist[ei] >= _UNREACHABLE:
            return None
        transit = self._transit
        cur = ei
        while cur != xi:
            hops.append(transit[cur])
            cur = nxt[cur]
        hops.append(exit_)
        if dst_asn != exit_:
            hops.append(dst_asn)
        graph = self.graph
        rels = tuple(
            graph.relationship(a, b) or "unknown"
            for a, b in zip(hops, hops[1:])
        )
        return tuple(hops), rels
