"""BGP-style routing table with longest-prefix matching.

The global table maps announced prefixes to the autonomous system that
originates them.  The mutable source of truth is a binary radix trie
over address bits — the structure production routers use, O(prefix
length) for insert and withdraw.  Lookups, however, go through a
pyasn-style *compiled* view: once announcements settle, each family's
prefixes flatten into sorted, disjoint integer ``(start, end)``
intervals searched with one :func:`bisect.bisect_right`, fronted by a
bounded per-address route cache.  Any ``announce``/``withdraw`` marks
the compiled view dirty and drops the cache; the next lookup recompiles
automatically, so callers never see a stale route and the packet hot
path (:meth:`Fabric.send <repro.netsim.fabric.Fabric.send>`) always
hits the flat table.

This is the component that stands in for the public BGP table the paper
consulted to map DITL source addresses to ASNs and to enumerate each
AS's announced prefixes (Section 3.2).
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from ipaddress import ip_network

from .addresses import Address, Network


@dataclass(frozen=True, slots=True)
class Announcement:
    """A single BGP-style origination of *prefix* by *asn*."""

    prefix: Network
    asn: int

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"invalid ASN: {self.asn}")


class _TrieNode:
    """One node of the binary radix trie; ``announcement`` marks a route."""

    __slots__ = ("children", "announcement")

    def __init__(self) -> None:
        self.children: list[_TrieNode | None] = [None, None]
        self.announcement: Announcement | None = None


def _address_bits(value: int, width: int) -> Iterator[int]:
    """Yield the bits of *value* most-significant first over *width* bits."""
    for shift in range(width - 1, -1, -1):
        yield (value >> shift) & 1


#: Sentinel distinguishing "cached None" from "not cached".
_CACHE_MISS = object()

#: Ceiling on cached per-address routes; the cache is flushed wholesale
#: when it fills (simple, and a full flush is cheaper than eviction
#: bookkeeping at this size).
ROUTE_CACHE_LIMIT = 1 << 16


@dataclass
class RoutingTable:
    """Longest-prefix-match table from announced prefixes to origin ASNs.

    IPv4 and IPv6 each get their own trie (the mutable source of truth)
    plus a compiled flat interval view used by :meth:`lookup`.  Duplicate
    announcements of the same prefix overwrite (last announcement wins),
    matching the "most recent RIB snapshot" semantics the paper's
    lookups rely on.
    """

    _roots: dict[int, _TrieNode] = field(
        default_factory=lambda: {4: _TrieNode(), 6: _TrieNode()}
    )
    _announcements: dict[Network, Announcement] = field(default_factory=dict)
    #: version -> (starts, ends, announcements): disjoint sorted spans
    #: where each span maps to its most-specific covering announcement.
    _compiled: dict[
        int, tuple[list[int], list[int], list[Announcement]]
    ] = field(default_factory=dict, repr=False)
    _by_asn: dict[int, list[Network]] = field(default_factory=dict, repr=False)
    _dirty: bool = True
    _cache: dict[tuple[int, int], Announcement | None] = field(
        default_factory=dict, repr=False
    )
    #: optional route-cache instruments (see ``bind_metrics``); ``None``
    #: keeps the lookup fast path at one extra attribute check.
    _mx_hits: object | None = field(default=None, repr=False)
    _mx_misses: object | None = field(default=None, repr=False)

    def bind_metrics(self, registry) -> None:
        """Count route-cache hits/misses into *registry* from now on.

        Cache behaviour depends on how much other traffic shared the
        table (a shard sees only its own lookups), so these counters
        are excluded from shard-equivalence comparisons.
        """
        self._mx_hits = registry.counter(
            "routing_cache_hits_total",
            "compiled-LPM route cache hits",
            deterministic=False,
        )
        self._mx_misses = registry.counter(
            "routing_cache_misses_total",
            "compiled-LPM route cache misses (bisect lookups)",
            deterministic=False,
        )

    def announce(self, prefix: Network | str, asn: int) -> Announcement:
        """Install an origination of *prefix* by *asn*; return the entry."""
        if isinstance(prefix, str):
            prefix = ip_network(prefix)
        announcement = Announcement(prefix, asn)
        node = self._roots[prefix.version]
        bits = _address_bits(int(prefix.network_address), prefix.max_prefixlen)
        for _, bit in zip(range(prefix.prefixlen), bits):
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]  # type: ignore[assignment]
        node.announcement = announcement
        self._announcements[prefix] = announcement
        self._invalidate()
        return announcement

    def withdraw(self, prefix: Network | str) -> bool:
        """Remove the announcement for *prefix*; return whether it existed."""
        if isinstance(prefix, str):
            prefix = ip_network(prefix)
        if prefix not in self._announcements:
            return False
        del self._announcements[prefix]
        node: _TrieNode | None = self._roots[prefix.version]
        bits = _address_bits(int(prefix.network_address), prefix.max_prefixlen)
        for _, bit in zip(range(prefix.prefixlen), bits):
            assert node is not None
            node = node.children[bit]
        assert node is not None
        node.announcement = None
        self._invalidate()
        return True

    def _invalidate(self) -> None:
        self._dirty = True
        if self._cache:
            self._cache.clear()

    def compile(self) -> None:
        """Flatten the current announcements into the interval view.

        Prefixes of one family are proper CIDR sets — any two are
        disjoint or nested — so a single sweep with a nesting stack
        yields disjoint spans, each owned by its most-specific prefix.
        Runs in O(n log n); called automatically from :meth:`lookup`
        when the table is dirty, or explicitly to pre-warm.
        """
        compiled: dict[
            int, tuple[list[int], list[int], list[Announcement]]
        ] = {}
        by_asn: dict[int, list[Network]] = {}
        for announcement in self._announcements.values():
            by_asn.setdefault(announcement.asn, []).append(
                announcement.prefix
            )
        for prefixes in by_asn.values():
            prefixes.sort(
                key=lambda p: (p.version, int(p.network_address), p.prefixlen)
            )
        for version in (4, 6):
            spans = sorted(
                (
                    int(a.prefix.network_address),
                    a.prefix.prefixlen,
                    int(a.prefix.broadcast_address),
                    a,
                )
                for a in self._announcements.values()
                if a.prefix.version == version
            )
            starts: list[int] = []
            ends: list[int] = []
            owners: list[Announcement] = []

            def emit(s: int, e: int, owner: Announcement) -> None:
                if s <= e:
                    starts.append(s)
                    ends.append(e)
                    owners.append(owner)

            stack: list[tuple[int, Announcement]] = []
            cursor = 0
            for start, _prefixlen, end, announcement in spans:
                while stack and stack[-1][0] < start:
                    top_end, top_ann = stack.pop()
                    emit(cursor, top_end, top_ann)
                    cursor = top_end + 1
                if stack and cursor < start:
                    emit(cursor, start - 1, stack[-1][1])
                stack.append((end, announcement))
                cursor = start
            while stack:
                top_end, top_ann = stack.pop()
                emit(cursor, top_end, top_ann)
                cursor = top_end + 1
            compiled[version] = (starts, ends, owners)
        self._compiled = compiled
        self._by_asn = by_asn
        self._dirty = False

    def lookup(self, address: Address) -> Announcement | None:
        """Return the longest-prefix-match announcement covering *address*.

        Fast path: bounded route cache, then one bisect over the
        compiled intervals (recompiling first if announcements changed).
        """
        value = int(address)
        key = (address.version, value)
        cached = self._cache.get(key, _CACHE_MISS)
        if cached is not _CACHE_MISS:
            mx = self._mx_hits
            if mx is not None:
                mx.inc()
            return cached  # type: ignore[return-value]
        mx = self._mx_misses
        if mx is not None:
            mx.inc()
        if self._dirty:
            self.compile()
        starts, ends, owners = self._compiled[address.version]
        index = bisect_right(starts, value) - 1
        announcement = (
            owners[index] if index >= 0 and value <= ends[index] else None
        )
        if len(self._cache) >= ROUTE_CACHE_LIMIT:
            self._cache.clear()
        self._cache[key] = announcement
        return announcement

    def lookup_uncompiled(self, address: Address) -> Announcement | None:
        """Reference longest-prefix match via the radix trie.

        Kept as the independent oracle the compiled view is checked
        against (property tests) and as the baseline the pipeline
        benchmark measures speedups from.
        """
        node: _TrieNode | None = self._roots[address.version]
        best: Announcement | None = None
        for bit in _address_bits(int(address), address.max_prefixlen):
            assert node is not None
            if node.announcement is not None:
                best = node.announcement
            node = node.children[bit]
            if node is None:
                return best
        if node is not None and node.announcement is not None:
            best = node.announcement
        return best

    def origin_asn(self, address: Address) -> int | None:
        """Return the ASN originating the covering prefix, or ``None``."""
        announcement = self.lookup(address)
        return announcement.asn if announcement else None

    def prefixes_for_asn(self, asn: int) -> list[Network]:
        """Return every prefix currently originated by *asn*, sorted."""
        if self._dirty:
            self.compile()
        return list(self._by_asn.get(asn, ()))

    def announcements(self) -> Iterable[Announcement]:
        """Iterate over all installed announcements."""
        return self._announcements.values()

    def __len__(self) -> int:
        return len(self._announcements)

    def __contains__(self, prefix: Network) -> bool:
        return prefix in self._announcements
