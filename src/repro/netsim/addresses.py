"""IP address and prefix utilities for the simulated Internet.

This module collects the address-manipulation primitives the rest of the
simulation is built on: a registry of IANA special-purpose prefixes
(RFC 6890), helpers for carving an autonomous system's announced space
into /24 (IPv4) or /64 (IPv6) subnets as described in Section 3.2 of the
paper, and deterministic random selection of host addresses inside a
subnet while respecting reserved addresses.

All functions accept and return :mod:`ipaddress` objects so callers never
juggle raw strings or integers.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from collections.abc import Iterable, Iterator
from ipaddress import (
    IPv4Address,
    IPv4Network,
    IPv6Address,
    IPv6Network,
    ip_address,
    ip_network,
)
from typing import Union

Address = Union[IPv4Address, IPv6Address]
Network = Union[IPv4Network, IPv6Network]


class IntervalTable:
    """Sorted, merged integer intervals with O(log n) membership.

    The flat-table idiom production LPM tools (pyasn, routeviews
    consumers) use: prefixes collapse to inclusive ``[start, end]``
    integer spans, overlaps are merged once at construction, and
    membership is a single :func:`bisect.bisect_right`.  This replaces
    the per-check linear scans over :mod:`ipaddress` objects that used
    to dominate the packet hot path.
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self, intervals: Iterable[tuple[int, int]]) -> None:
        merged: list[list[int]] = []
        for start, end in sorted(intervals):
            if merged and start <= merged[-1][1] + 1:
                if end > merged[-1][1]:
                    merged[-1][1] = end
            else:
                merged.append([start, end])
        self._starts = [pair[0] for pair in merged]
        self._ends = [pair[1] for pair in merged]

    @classmethod
    def from_networks(cls, networks: Iterable[Network]) -> "IntervalTable":
        return cls(
            (int(n.network_address), int(n.broadcast_address))
            for n in networks
        )

    def contains_value(self, value: int) -> bool:
        index = bisect_right(self._starts, value) - 1
        return index >= 0 and value <= self._ends[index]

    def __contains__(self, address: Address) -> bool:
        return self.contains_value(int(address))

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __len__(self) -> int:
        return len(self._starts)

#: IANA special-purpose IPv4 prefixes (RFC 6890 and successors).  Targets
#: inside any of these are excluded from the experiment because no
#: legitimate public route exists for them (Section 3.1).
SPECIAL_PURPOSE_V4: tuple[IPv4Network, ...] = tuple(
    ip_network(p)
    for p in (
        "0.0.0.0/8",          # "this host on this network"
        "10.0.0.0/8",         # private-use
        "100.64.0.0/10",      # shared address space (CGN)
        "127.0.0.0/8",        # loopback
        "169.254.0.0/16",     # link local
        "172.16.0.0/12",      # private-use
        "192.0.0.0/24",       # IETF protocol assignments
        "192.0.2.0/24",       # TEST-NET-1
        "192.88.99.0/24",     # 6to4 relay anycast
        "192.168.0.0/16",     # private-use
        "198.18.0.0/15",      # benchmarking
        "198.51.100.0/24",    # TEST-NET-2
        "203.0.113.0/24",     # TEST-NET-3
        "224.0.0.0/4",        # multicast
        "240.0.0.0/4",        # reserved
        "255.255.255.255/32", # limited broadcast
    )
)

#: IANA special-purpose IPv6 prefixes.
SPECIAL_PURPOSE_V6: tuple[IPv6Network, ...] = tuple(
    ip_network(p)
    for p in (
        "::1/128",        # loopback
        "::/128",         # unspecified
        "::ffff:0:0/96",  # IPv4-mapped
        "64:ff9b::/96",   # IPv4-IPv6 translation
        "100::/64",       # discard-only
        "2001::/23",      # IETF protocol assignments
        "2001:db8::/32",  # documentation
        "fc00::/7",       # unique local
        "fe80::/10",      # link local
        "ff00::/8",       # multicast
    )
)

#: The private / unique-local spoofed sources used by the experiment
#: (Section 3.2): 192.168.0.10 and fc00::10.
PRIVATE_SOURCE_V4: IPv4Address = ip_address("192.168.0.10")
PRIVATE_SOURCE_V6: IPv6Address = ip_address("fc00::10")

#: The loopback spoofed sources (Section 3.2): 127.0.0.1 and ::1.
LOOPBACK_V4: IPv4Address = ip_address("127.0.0.1")
LOOPBACK_V6: IPv6Address = ip_address("::1")

#: Subnet granularity used when carving AS space (Section 3.2).
SUBNET_PREFIX_V4 = 24
SUBNET_PREFIX_V6 = 64


#: RFC 1918 / unique-local prefixes backing :func:`is_private`.
PRIVATE_V4: tuple[IPv4Network, ...] = tuple(
    ip_network(p)
    for p in ("10.0.0.0/8", "172.16.0.0/12", "192.168.0.0/16")
)
PRIVATE_V6: tuple[IPv6Network, ...] = (ip_network("fc00::/7"),)

_LOOPBACK_NETS = {
    4: (ip_network("127.0.0.0/8"),),
    6: (ip_network("::1/128"),),
}

#: Compiled integer interval tables, built once at import.  Every
#: per-packet classification below is a bisect over these instead of a
#: linear scan constructing :mod:`ipaddress` objects.
_SPECIAL_TABLE: dict[int, IntervalTable] = {
    4: IntervalTable.from_networks(SPECIAL_PURPOSE_V4),
    6: IntervalTable.from_networks(SPECIAL_PURPOSE_V6),
}
_PRIVATE_TABLE: dict[int, IntervalTable] = {
    4: IntervalTable.from_networks(PRIVATE_V4),
    6: IntervalTable.from_networks(PRIVATE_V6),
}
_LOOPBACK_TABLE: dict[int, IntervalTable] = {
    v: IntervalTable.from_networks(nets) for v, nets in _LOOPBACK_NETS.items()
}
_MARTIAN_TABLE: dict[int, IntervalTable] = {
    v: IntervalTable.from_networks(
        tuple(_LOOPBACK_NETS[v]) + ({4: PRIVATE_V4, 6: PRIVATE_V6}[v])
    )
    for v in (4, 6)
}


def is_special_purpose(address: Address) -> bool:
    """Return ``True`` if *address* falls in an IANA special-purpose block.

    The experiment excludes such addresses from its target set because
    there can be no legitimate entry for them in the public routing table
    (Section 3.1).
    """
    return _SPECIAL_TABLE[address.version].contains_value(int(address))


def is_loopback(address: Address) -> bool:
    """Return ``True`` for addresses in 127.0.0.0/8 or ::1/128."""
    return _LOOPBACK_TABLE[address.version].contains_value(int(address))


def is_private(address: Address) -> bool:
    """Return ``True`` for RFC 1918 / unique-local addresses."""
    return _PRIVATE_TABLE[address.version].contains_value(int(address))


def is_martian(address: Address) -> bool:
    """Return ``True`` for private *or* loopback sources (one bisect).

    This is the combined check AS border martian filtering performs on
    every cross-border packet; folding the two tables into one keeps it
    a single lookup on the hot path.
    """
    return _MARTIAN_TABLE[address.version].contains_value(int(address))


# -- address interning -------------------------------------------------------


class _InternedIPv4(IPv4Address):
    """An :class:`IPv4Address` whose hash is computed once and cached."""

    __slots__ = ("_cached_hash",)

    def __hash__(self) -> int:
        return self._cached_hash

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __reduce__(self):
        # Re-intern on load rather than restoring the cached hash:
        # ``ipaddress`` hashes are salted per process (PYTHONHASHSEED),
        # so a hash pickled by the building process would disagree with
        # fresh addresses in the loading process and silently break
        # dictionary lookups.  Re-interning also dedupes the loaded
        # object graph through the intern table.
        return (_restore_interned, (4, int(self)))


class _InternedIPv6(IPv6Address):
    """An :class:`IPv6Address` whose hash is computed once and cached."""

    __slots__ = ("_cached_hash",)

    def __hash__(self) -> int:
        return self._cached_hash

    def __repr__(self) -> str:
        return f"IPv6Address({str(self)!r})"

    def __reduce__(self):
        # See _InternedIPv4.__reduce__.
        return (_restore_interned, (6, int(self)))


def _restore_interned(version: int, value: int) -> Address:
    address = IPv4Address(value) if version == 4 else IPv6Address(value)
    return intern_address(address)


_INTERNED: dict[Address, Address] = {}


def intern_address(address: Address) -> Address:
    """Return a canonical, hash-cached instance equal to *address*.

    ``ipaddress`` objects recompute their hash on every dictionary
    operation, which the fabric's host table and the scanner's probe
    index pay for millions of times per campaign.  Interned addresses
    carry a cached hash (and identity equality for the common case), so
    keying those tables on interned objects makes each lookup cheap.
    Interning is purely value-based: the returned object compares,
    hashes, formats and sorts exactly like the original.
    """
    found = _INTERNED.get(address)
    if found is not None:
        return found
    if address.version == 4:
        interned: Address = _InternedIPv4(int(address))
        interned._cached_hash = IPv4Address.__hash__(interned)
    else:
        interned = _InternedIPv6(int(address))
        interned._cached_hash = IPv6Address.__hash__(interned)
    _INTERNED[address] = interned
    return interned


def clear_interned_addresses() -> None:
    """Drop the intern table (mainly for long-lived test sessions)."""
    _INTERNED.clear()


def subnet_prefix_length(version: int) -> int:
    """Return the subnet carving granularity for an IP *version* (4 or 6)."""
    if version == 4:
        return SUBNET_PREFIX_V4
    if version == 6:
        return SUBNET_PREFIX_V6
    raise ValueError(f"unknown IP version: {version!r}")


def subnet_of(address: Address) -> Network:
    """Return the /24 (IPv4) or /64 (IPv6) subnet containing *address*."""
    return ip_network(
        (address, subnet_prefix_length(address.version)), strict=False
    )


def iter_subnets(prefix: Network) -> Iterator[Network]:
    """Yield the /24 or /64 subnets making up *prefix*.

    A prefix already at or beyond the carving granularity yields just the
    enclosing subnet.
    """
    granularity = subnet_prefix_length(prefix.version)
    if prefix.prefixlen >= granularity:
        yield ip_network((prefix.network_address, granularity), strict=False)
        return
    yield from prefix.subnets(new_prefix=granularity)


def limited_subnets(
    prefix: Network,
    limit: int,
    preferred: frozenset[Network] | set[Network] = frozenset(),
) -> list[Network]:
    """Return up to *limit* carving subnets of *prefix*.

    Small prefixes are fully enumerated.  For prefixes with more subnets
    than *limit* (common for IPv6, where a /48 holds 65,536 /64s),
    subnets appearing in *preferred* — the hit-list preference of
    Section 3.2 — are returned first, followed by the lowest-numbered
    remaining subnets.  This mirrors the paper's targeted IPv6 prefix
    selection without enumerating sparse space.
    """
    if limit < 1:
        return []
    total = count_subnets(prefix)
    if total <= limit:
        return list(iter_subnets(prefix))
    granularity = subnet_prefix_length(prefix.version)
    chosen: list[Network] = [
        subnet
        for subnet in sorted(
            preferred, key=lambda s: int(s.network_address)
        )
        if subnet.version == prefix.version
        and subnet.prefixlen == granularity
        and subnet.network_address in prefix
    ][:limit]
    seen = set(chosen)
    base = int(prefix.network_address)
    step = 1 << (prefix.max_prefixlen - granularity)
    offset = 0
    while len(chosen) < limit and offset < total:
        subnet = ip_network((base + offset * step, granularity))
        offset += 1
        if subnet in seen:
            continue
        chosen.append(subnet)
    return chosen


def count_subnets(prefix: Network) -> int:
    """Return the number of /24 or /64 subnets contained in *prefix*."""
    granularity = subnet_prefix_length(prefix.version)
    if prefix.prefixlen >= granularity:
        return 1
    return 1 << (granularity - prefix.prefixlen)


def random_host_in_subnet(
    subnet: Network, rng: random.Random, *, limit: int | None = None
) -> Address:
    """Pick a host address from *subnet* uniformly at random.

    For IPv4 the first and last addresses of a /24 are excluded because of
    their reserved status (network and broadcast; Section 3.2).  For IPv6,
    the paper limits selection to the first 100 addresses of the /64 minus
    the first two (often the router); pass ``limit=100`` for that
    behaviour, which is also the default for IPv6.
    """
    base = int(subnet.network_address)
    if subnet.version == 4:
        size = subnet.num_addresses
        # Skip network (offset 0) and broadcast (offset size-1).
        offset = rng.randrange(1, size - 1)
        return ip_address(base + offset)
    if limit is None:
        limit = 100
    # Skip the first two addresses, often the router (Section 3.2).
    offset = rng.randrange(2, limit)
    return ip_address(base + offset)


def host_in_prefix(
    prefix: Network, rng: random.Random, *, offset_cap: int = 200
) -> Address:
    """Pick a host address inside *prefix* from an explicit *rng*.

    Used by the scenario builders when placing resolvers into announced
    space.  The offset is capped so huge prefixes still yield addresses
    near the base (dense, router-adjacent space, as in Section 3.2's
    observation that low addresses dominate).  The caller supplies the
    :class:`random.Random`: no module-level RNG state is consulted, so
    shard workers seeding their own streams stay deterministic.
    """
    base = int(prefix.network_address)
    span = min(prefix.num_addresses - 2, offset_cap)
    return ip_address(base + 1 + rng.randrange(max(span, 1)))


def reverse_pointer_name(address: Address) -> str:
    """Return the in-addr.arpa / ip6.arpa name used for PTR lookups."""
    return address.reverse_pointer


def family_label(version: int) -> str:
    """Return ``"IPv4"`` or ``"IPv6"`` for an IP *version* number."""
    return f"IPv{version}"
