"""CAIDA-style tiered AS-relationship graph generator.

The paper's measurements span tens of thousands of ASes embedded in a
provider/peer/customer hierarchy; where an AS sits in that hierarchy
decides which borders its spoofed packets cross and therefore which
SAV deployments can catch them.  This module synthesizes a graph with
the familiar three-band shape of the inferred CAIDA AS-relationship
datasets:

* **tier 1** — a small clique of transit-free networks peering with
  each other (settlement-free core);
* **tier 2** — regional transit providers, each buying transit from a
  couple of tier-1s and densely peering with other tier-2s, the way
  mid-tier networks meet at IXPs;
* **tier 3** — stub edge ASes that originate prefixes but carry no
  third-party traffic.  Stubs attach to a single transit provider
  (primary/backup multihoming without announcement via the backup is
  modelled as single-homing, the common no-export configuration),
  which keeps the valley-free path computation in
  :mod:`repro.netsim.routing` *exact* with respect to the textbook
  per-destination Gao–Rexford propagation.

Every draw is content-keyed via :func:`stable_hash` /
:func:`stable_fraction` on ``(seed, purpose, asn...)`` so the same
spec + seed always yields the same graph in every process — the
property the compiled-scenario artifact and shard-identical campaigns
rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .determinism import stable_fraction, stable_hash, stable_range

__all__ = [
    "ASGraph",
    "TopologySpec",
    "generate_topology",
    "v4_prefix_lengths",
    "v4_prefix_count",
    "v6_prefix_lengths",
]

#: Relationship labels from the perspective of the *first* AS of an
#: ordered pair: ``relationship(a, b) == "provider"`` reads "b is a's
#: provider".
REL_PROVIDER = "provider"
REL_CUSTOMER = "customer"
REL_PEER = "peer"


@dataclass(frozen=True)
class TopologySpec:
    """Declarative knobs for the tiered generator.

    ``tier1``/``tier2`` default to ``None`` meaning "scale with the
    AS count" (roughly ``n**0.30`` and ``n**0.55``, matching the
    orders of magnitude of the real transit core vs. the stub edge).
    The spec is JSON-serializable so it can ride inside
    ``CampaignSpec`` payloads and the compiled-scenario content key.
    """

    kind: str = "tiered"
    tier1: int | None = None
    tier2: int | None = None
    #: mean number of IXP-style peer links per tier-2 AS.
    peer_degree: float = 4.0

    def __post_init__(self) -> None:
        if self.kind != "tiered":
            raise ValueError(f"unknown topology kind: {self.kind!r}")
        for name in ("tier1", "tier2"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if self.peer_degree < 0:
            raise ValueError("peer_degree must be >= 0")

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "tier1": self.tier1,
            "tier2": self.tier2,
            "peer_degree": self.peer_degree,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TopologySpec":
        if not isinstance(payload, dict):
            raise ValueError(f"topology payload must be a dict: {payload!r}")
        unknown = set(payload) - {"kind", "tier1", "tier2", "peer_degree"}
        if unknown:
            raise ValueError(f"unknown topology keys: {sorted(unknown)}")
        return cls(
            kind=payload.get("kind", "tiered"),
            tier1=payload.get("tier1"),
            tier2=payload.get("tier2"),
            peer_degree=payload.get("peer_degree", 4.0),
        )


@dataclass
class ASGraph:
    """An AS-relationship graph: tiers plus typed adjacency.

    Plain picklable data — the graph rides inside the compiled
    scenario artifact unchanged.  Adjacency is stored as sorted
    tuples; ``providers[a]`` lists a's transit providers,
    ``customers[a]`` its customers, ``peers[a]`` its settlement-free
    peers.  A *stub* is an AS with exactly one provider and no
    customers or peers; everything else belongs to the transit
    skeleton the valley-free computation runs over.
    """

    spec: TopologySpec
    seed: int
    tiers: dict[int, int] = field(default_factory=dict)
    providers: dict[int, tuple[int, ...]] = field(default_factory=dict)
    customers: dict[int, tuple[int, ...]] = field(default_factory=dict)
    peers: dict[int, tuple[int, ...]] = field(default_factory=dict)

    def tier_of(self, asn: int) -> int:
        """Tier band of *asn* (1 core, 2 regional, 3 stub edge)."""
        return self.tiers.get(asn, 3)

    def relationship(self, a: int, b: int) -> str | None:
        """Label of *b* from *a*'s perspective, or ``None`` if no edge."""
        if b in self.providers.get(a, ()):
            return REL_PROVIDER
        if b in self.customers.get(a, ()):
            return REL_CUSTOMER
        if b in self.peers.get(a, ()):
            return REL_PEER
        return None

    def is_stub(self, asn: int) -> bool:
        return (
            len(self.providers.get(asn, ())) == 1
            and not self.customers.get(asn)
            and not self.peers.get(asn)
        )

    def transit_asns(self) -> list[int]:
        """Sorted ASNs of the transit skeleton (every non-stub AS)."""
        return sorted(a for a in self.tiers if not self.is_stub(a))

    def stub_asns(self) -> list[int]:
        return sorted(a for a in self.tiers if self.is_stub(a))

    def edge_count(self) -> int:
        provider_edges = sum(len(v) for v in self.providers.values())
        peer_edges = sum(len(v) for v in self.peers.values()) // 2
        return provider_edges + peer_edges

    def digest(self) -> int:
        """Stable 64-bit fingerprint over every node and edge."""
        parts: list = [self.seed, self.spec.kind]
        for asn in sorted(self.tiers):
            parts.append(asn)
            parts.append(self.tiers[asn])
        for tag, table in (("prov", self.providers), ("peer", self.peers)):
            for asn in sorted(table):
                if table[asn]:
                    parts.append(tag)
                    parts.append(asn)
                    parts.extend(table[asn])
        return stable_hash(*parts)


def _tier_sizes(spec: TopologySpec, n: int) -> tuple[int, int]:
    """Resolve (tier1, tier2) sizes for an *n*-AS population."""
    tier1 = spec.tier1 if spec.tier1 is not None else max(4, round(n**0.30))
    tier2 = spec.tier2 if spec.tier2 is not None else max(8, round(n**0.55))
    tier1 = max(1, min(tier1, n))
    tier2 = max(0, min(tier2, n - tier1))
    return tier1, tier2


def generate_topology(
    spec: TopologySpec,
    seed: int,
    asns: list[int],
    forced_stubs: tuple[int, ...] = (),
) -> ASGraph:
    """Build a tiered AS graph over *asns*, content-keyed on *seed*.

    *forced_stubs* (infrastructure / measurement ASes) are attached as
    stub customers of the transit core regardless of where their hash
    would have ranked them — the measurement client and anycast DNS
    operators are edge networks, not transit.
    """
    forced = sorted(set(forced_stubs))
    population = sorted(set(asns) - set(forced))
    if not population:
        raise ValueError("topology needs at least one AS")
    n_tier1, n_tier2 = _tier_sizes(spec, len(population))
    # Tier membership is ranked by an independent hash so it cannot
    # correlate with any per-AS draw elsewhere in the scenario build.
    ranked = sorted(
        population, key=lambda a: (stable_hash(seed, "topology-tier", a), a)
    )
    tier1 = sorted(ranked[:n_tier1])
    tier2 = sorted(ranked[n_tier1 : n_tier1 + n_tier2])
    stubs = sorted(ranked[n_tier1 + n_tier2 :] + forced)

    providers: dict[int, list[int]] = {a: [] for a in tier1 + tier2 + stubs}
    customers: dict[int, list[int]] = {a: [] for a in tier1 + tier2 + stubs}
    peers: dict[int, list[int]] = {a: [] for a in tier1 + tier2 + stubs}
    tiers: dict[int, int] = {}
    for a in tier1:
        tiers[a] = 1
    for a in tier2:
        tiers[a] = 2
    for a in stubs:
        tiers[a] = 3

    # Tier-1: settlement-free full mesh.
    for i, a in enumerate(tier1):
        for b in tier1[i + 1 :]:
            peers[a].append(b)
            peers[b].append(a)

    # Tier-2: multihomed transit customers of 2-3 tier-1s...
    for a in tier2:
        want = 1
        if len(tier1) >= 2:
            want = 2
            if (
                len(tier1) >= 3
                and stable_fraction(seed, "topology-t2-multihome", a) < 0.35
            ):
                want = 3
        chosen = sorted(
            tier1,
            key=lambda t: (stable_hash(seed, "topology-t2-provider", a, t), t),
        )[:want]
        for p in sorted(chosen):
            providers[a].append(p)
            customers[p].append(a)
    # ... with IXP-style dense peering among themselves.
    if len(tier2) > 1 and spec.peer_degree > 0:
        p_link = min(1.0, spec.peer_degree / (len(tier2) - 1))
        for i, a in enumerate(tier2):
            for b in tier2[i + 1 :]:
                if stable_fraction(seed, "topology-t2-peer", a, b) < p_link:
                    peers[a].append(b)
                    peers[b].append(a)

    # Stubs: single-homed customers of the regional tier (or of the
    # core when the population is too small to have a tier 2).
    pool = tier2 if tier2 else tier1
    for a in stubs:
        p = pool[stable_range(len(pool), seed, "topology-stub-provider", a)]
        providers[a].append(p)
        customers[p].append(a)

    return ASGraph(
        spec=spec,
        seed=seed,
        tiers=tiers,
        providers={a: tuple(sorted(v)) for a, v in providers.items()},
        customers={a: tuple(sorted(v)) for a, v in customers.items()},
        peers={a: tuple(sorted(v)) for a, v in peers.items()},
    )


# ---------------------------------------------------------------------------
# per-tier address-space skew
# ---------------------------------------------------------------------------

#: Candidate v4 prefix lengths per tier: transit networks hold short,
#: aggregated allocations; stubs announce the long tail of /22-/24s.
_V4_LENGTHS = {
    1: (16, 18, 20, 20, 22),
    2: (18, 20, 20, 22, 22, 24),
    3: (20, 22, 22, 23, 24, 24),
}
_V6_LENGTHS = {
    1: (48, 52, 56),
    2: (52, 56, 56, 60),
    3: (56, 56, 60, 60, 64, 64),
}


def v4_prefix_count(tier: int, as_rng) -> int:
    """Announced v4 prefix count for an AS of *tier* (heavy-tailed)."""
    if tier == 1:
        return 3 + min(int(as_rng.expovariate(0.35)), 13)
    if tier == 2:
        return 2 + min(int(as_rng.expovariate(0.6)), 8)
    return 1 + min(int(as_rng.expovariate(0.8)), 6)


def v4_prefix_lengths(tier: int) -> tuple[int, ...]:
    return _V4_LENGTHS.get(tier, _V4_LENGTHS[3])


def v6_prefix_lengths(tier: int) -> tuple[int, ...]:
    return _V6_LENGTHS.get(tier, _V6_LENGTHS[3])
