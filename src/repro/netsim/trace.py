"""Packet capture for the fabric: a tcpdump for the simulated Internet.

A :class:`PacketTrace` attaches to the fabric as a tap and records every
delivered packet as a structured entry.  Traces can be filtered,
rendered tcpdump-style, and serialized as JSON lines — the debugging
workflow users of a measurement platform expect.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from ipaddress import ip_address
from pathlib import Path

from .addresses import Address
from .fabric import Fabric, Host
from .packet import Packet, Transport


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One captured packet."""

    time: float
    src: Address
    sport: int
    dst: Address
    dport: int
    transport: Transport
    size: int
    host: str

    def render(self) -> str:
        """tcpdump-style one-liner."""
        proto = self.transport.value.upper()
        return (
            f"{self.time:10.4f} {proto} {self.src}.{self.sport} > "
            f"{self.dst}.{self.dport}: {self.size} bytes -> {self.host}"
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "time": self.time,
                "src": str(self.src),
                "sport": self.sport,
                "dst": str(self.dst),
                "dport": self.dport,
                "transport": self.transport.value,
                "size": self.size,
                "host": self.host,
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEntry":
        data = json.loads(line)
        return cls(
            time=float(data["time"]),
            src=ip_address(data["src"]),
            sport=int(data["sport"]),
            dst=ip_address(data["dst"]),
            dport=int(data["dport"]),
            transport=Transport(data["transport"]),
            size=int(data["size"]),
            host=str(data["host"]),
        )


#: Predicate deciding whether a packet is captured.
TraceFilter = Callable[[Packet, Host], bool]


def port_filter(port: int) -> TraceFilter:
    """Capture packets with *port* as source or destination."""
    return lambda packet, host: port in (packet.sport, packet.dport)


def host_filter(name: str) -> TraceFilter:
    """Capture packets delivered to the host called *name*."""
    return lambda packet, host: host.name == name


def address_filter(address: Address) -> TraceFilter:
    """Capture packets to or from *address*."""
    return lambda packet, host: address in (packet.src, packet.dst)


class PacketTrace:
    """A capture session over one fabric.

    ``max_entries`` bounds memory as a ring buffer: once full, each new
    packet evicts the oldest entry (the most recent traffic is what a
    debugging session wants) and ``dropped_by_cap`` counts the
    evictions.  ``None`` captures without limit.
    """

    def __init__(
        self,
        fabric: Fabric,
        *,
        capture_filter: TraceFilter | None = None,
        max_entries: int | None = 1_000_000,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.fabric = fabric
        self.capture_filter = capture_filter
        self.max_entries = max_entries
        self._entries: deque[TraceEntry] = deque(maxlen=max_entries)
        self.dropped_by_cap = 0
        self._armed = False

    @property
    def entries(self) -> list[TraceEntry]:
        """Captured entries, oldest first (a snapshot list)."""
        return list(self._entries)

    def start(self) -> "PacketTrace":
        """Attach the capture tap; returns self for chaining."""
        if not self._armed:
            self.fabric.add_tap(self._tap)
            self._armed = True
        return self

    def _tap(self, packet: Packet, host: Host) -> None:
        if self.capture_filter is not None and not self.capture_filter(
            packet, host
        ):
            return
        if (
            self.max_entries is not None
            and len(self._entries) == self.max_entries
        ):
            self.dropped_by_cap += 1  # the deque evicts the oldest entry
        self._entries.append(
            TraceEntry(
                time=self.fabric.now,
                src=packet.src,
                sport=packet.sport,
                dst=packet.dst,
                dport=packet.dport,
                transport=packet.transport,
                size=len(packet.payload),
                host=host.name,
            )
        )

    # -- views ---------------------------------------------------------------

    def between(self, start: float, end: float) -> list[TraceEntry]:
        """Entries captured in the half-open interval [start, end)."""
        return [e for e in self._entries if start <= e.time < end]

    def involving(self, address: Address) -> list[TraceEntry]:
        """Entries with *address* as source or destination."""
        return [
            e for e in self._entries if address in (e.src, e.dst)
        ]

    def render(self, limit: int | None = None) -> str:
        """tcpdump-style text rendering of the capture."""
        entries = self.entries if limit is None else self.entries[:limit]
        return "\n".join(entry.render() for entry in entries)

    def summary(self) -> dict:
        """Aggregate view of the capture: totals and per-key breakdowns.

        Returns ``entries`` (captured count), ``dropped_by_cap``,
        ``bytes``, plus ``by_transport`` and ``by_host`` count dicts,
        each sorted by key so the summary is stable across runs.
        """
        by_transport: dict[str, int] = {}
        by_host: dict[str, int] = {}
        total_bytes = 0
        for entry in self._entries:
            key = entry.transport.value
            by_transport[key] = by_transport.get(key, 0) + 1
            by_host[entry.host] = by_host.get(entry.host, 0) + 1
            total_bytes += entry.size
        return {
            "entries": len(self._entries),
            "dropped_by_cap": self.dropped_by_cap,
            "bytes": total_bytes,
            "by_transport": dict(sorted(by_transport.items())),
            "by_host": dict(sorted(by_host.items())),
        }

    # -- persistence -----------------------------------------------------------

    def save(self, path: Path | str) -> int:
        """Write the capture as JSON lines; returns the entry count."""
        path = Path(path)
        with path.open("w") as handle:
            for entry in self._entries:
                handle.write(entry.to_json() + "\n")
        return len(self._entries)

    @staticmethod
    def load(path: Path | str) -> list[TraceEntry]:
        """Read a capture written by :meth:`save`."""
        entries = []
        with Path(path).open() as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entries.append(TraceEntry.from_json(line))
        return entries

    def __len__(self) -> int:
        return len(self._entries)
