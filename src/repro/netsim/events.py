"""Discrete-event clock for the simulation.

The scan client, resolvers and authoritative servers all share one
:class:`EventLoop`.  Events are (time, sequence, callback) triples in a
heap; the sequence number makes scheduling stable for events that share a
timestamp, which keeps every run bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class ScheduledEvent:
    """Handle for a scheduled callback, usable for cancellation."""

    when: float
    seq: int

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


@dataclass
class EventLoop:
    """A minimal, deterministic discrete-event scheduler.

    Time is a float in seconds.  ``run()`` drains the heap; ``run_until``
    stops once the clock would pass a deadline.  Cancellation is handled
    lazily with a tombstone set, the standard heapq idiom.
    """

    now: float = 0.0
    _heap: list[tuple[float, int, Callable[[], None]]] = field(
        default_factory=list
    )
    _seq: itertools.count = field(default_factory=lambda: itertools.count())
    _cancelled: set[int] = field(default_factory=set)
    #: (when, seq) of the most recently popped event.  The heap pops in
    #: strict (when, seq) order, so anything at or below this mark has
    #: already run (or been reaped) and can never need a tombstone.
    _last_popped: tuple[float, int] = (float("-inf"), -1)
    events_processed: int = 0
    #: optional peak-occupancy gauges (see ``bind_metrics``); ``None``
    #: keeps scheduling at one extra attribute check when disabled.
    _mx_depth: object | None = field(default=None, repr=False)
    _mx_tombstones: object | None = field(default=None, repr=False)

    def bind_metrics(self, registry) -> None:
        """Record peak heap depth and tombstone count into *registry*.

        Occupancy depends on how work interleaves (shards batch probe
        events differently), so both gauges are excluded from
        shard-equivalence comparisons.
        """
        self._mx_depth = registry.gauge(
            "eventloop_queue_depth_peak",
            "largest number of events simultaneously queued",
            deterministic=False,
        )
        self._mx_tombstones = registry.gauge(
            "eventloop_tombstones_peak",
            "largest number of pending cancellations",
            deterministic=False,
        )

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> ScheduledEvent:
        """Run *callback* after *delay* seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(
        self, when: float, callback: Callable[[], None]
    ) -> ScheduledEvent:
        """Run *callback* at absolute simulated time *when*."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        seq = next(self._seq)
        heapq.heappush(self._heap, (when, seq, callback))
        mx = self._mx_depth
        if mx is not None:
            mx.set_max(len(self._heap))
        return ScheduledEvent(when, seq)

    def schedule_many(
        self, events: Iterable[tuple[float, Callable[[], None]]]
    ) -> list[ScheduledEvent]:
        """Batch-schedule ``(when, callback)`` pairs at absolute times.

        For bursty producers (the scanner's streaming probe batches) one
        ``heapify`` over the combined heap beats pushing each event
        individually; small batches fall back to ordinary pushes.
        Callbacks sharing a timestamp fire in the order given, exactly
        as if scheduled one by one.
        """
        added: list[tuple[float, int, Callable[[], None]]] = []
        for when, callback in events:
            if when < self.now:
                raise ValueError(
                    f"cannot schedule in the past: {when} < {self.now}"
                )
            added.append((when, next(self._seq), callback))
        if not added:
            return []
        heap = self._heap
        # k pushes cost O(k log n); one heapify costs O(n + k).
        if len(added) * 4 >= len(heap):
            heap.extend(added)
            heapq.heapify(heap)
        else:
            for item in added:
                heapq.heappush(heap, item)
        mx = self._mx_depth
        if mx is not None:
            mx.set_max(len(heap))
        return [ScheduledEvent(when, seq) for when, seq, _ in added]

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a previously scheduled event (idempotent).

        Cancelling an event that already fired (or was already reaped)
        is a no-op and leaves no tombstone behind, so the tombstone set
        stays bounded by the number of *pending* cancellations — and
        when those come to dominate the heap (a retry-heavy scan
        cancels one timeout timer per answered probe), the heap is
        compacted so neither structure grows past roughly twice the
        live event count.
        """
        if (event.when, event.seq) <= self._last_popped:
            return
        self._cancelled.add(event.seq)
        mx = self._mx_tombstones
        if mx is not None:
            mx.set_max(len(self._cancelled))
        if (
            len(self._cancelled) >= self.COMPACT_MIN_TOMBSTONES
            and len(self._cancelled) * 2 >= len(self._heap)
        ):
            self._compact()

    #: Tombstones below this count are never worth a heap rebuild.
    COMPACT_MIN_TOMBSTONES = 1024

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Every tombstone references an entry still in the heap (``cancel``
        refuses already-popped events), so dropping the matching entries
        clears the whole set.  O(n) now against O(n) dead weight on
        every subsequent push/pop.
        """
        cancelled = self._cancelled
        self._heap = [e for e in self._heap if e[1] not in cancelled]
        heapq.heapify(self._heap)
        cancelled.clear()

    def pending(self) -> int:
        """Return the number of events still queued (including cancelled)."""
        return len(self._heap)

    def run(self, max_events: int | None = None) -> int:
        """Drain the event heap; return the number of callbacks invoked.

        ``max_events`` bounds the number of callbacks, guarding against
        accidental livelock in tests.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            processed += self._step()
        return processed

    def run_until(self, deadline: float) -> int:
        """Process events with timestamps <= *deadline*, then advance to it."""
        processed = 0
        while self._heap and self._heap[0][0] <= deadline:
            processed += self._step()
        self.now = max(self.now, deadline)
        return processed

    def _step(self) -> int:
        when, seq, callback = heapq.heappop(self._heap)
        self._last_popped = (when, seq)
        if seq in self._cancelled:
            self._cancelled.discard(seq)
            return 0
        self.now = when
        callback()
        self.events_processed += 1
        return 1
