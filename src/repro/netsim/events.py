"""Discrete-event clock for the simulation.

The scan client, resolvers and authoritative servers all share one
:class:`EventLoop`.  Events are (time, sequence, callback) triples in a
heap; the sequence number makes scheduling stable for events that share a
timestamp, which keeps every run bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class ScheduledEvent:
    """Handle for a scheduled callback, usable for cancellation."""

    when: float
    seq: int

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


@dataclass
class EventLoop:
    """A minimal, deterministic discrete-event scheduler.

    Time is a float in seconds.  ``run()`` drains the heap; ``run_until``
    stops once the clock would pass a deadline.  Cancellation is handled
    lazily with a tombstone set, the standard heapq idiom.
    """

    now: float = 0.0
    _heap: list[tuple[float, int, Callable[[], None]]] = field(
        default_factory=list
    )
    _seq: itertools.count = field(default_factory=lambda: itertools.count())
    _cancelled: set[int] = field(default_factory=set)
    events_processed: int = 0

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> ScheduledEvent:
        """Run *callback* after *delay* seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(
        self, when: float, callback: Callable[[], None]
    ) -> ScheduledEvent:
        """Run *callback* at absolute simulated time *when*."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        seq = next(self._seq)
        heapq.heappush(self._heap, (when, seq, callback))
        return ScheduledEvent(when, seq)

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        self._cancelled.add(event.seq)

    def pending(self) -> int:
        """Return the number of events still queued (including cancelled)."""
        return len(self._heap)

    def run(self, max_events: int | None = None) -> int:
        """Drain the event heap; return the number of callbacks invoked.

        ``max_events`` bounds the number of callbacks, guarding against
        accidental livelock in tests.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            processed += self._step()
        return processed

    def run_until(self, deadline: float) -> int:
        """Process events with timestamps <= *deadline*, then advance to it."""
        processed = 0
        while self._heap and self._heap[0][0] <= deadline:
            processed += self._step()
        self.now = max(self.now, deadline)
        return processed

    def _step(self) -> int:
        when, seq, callback = heapq.heappop(self._heap)
        if seq in self._cancelled:
            self._cancelled.discard(seq)
            return 0
        self.now = when
        callback()
        self.events_processed += 1
        return 1
