"""Discrete-event clock for the simulation.

The scan client, resolvers and authoritative servers all share one
:class:`EventLoop`.  Events are mutable ``[time, sequence, callback]``
entries in a heap; the sequence number makes scheduling stable for
events that share a timestamp, which keeps every run bit-for-bit
reproducible.

Two draining modes share one data structure:

* **skip-ahead** (the default): cancellation nulls the entry's callback
  in place, and the drain loop discards runs of dead entries without
  treating each as a step — the clock jumps straight from one live
  event to the next.  When everything left in the heap is cancelled
  (the tail of a retry-heavy scan), the whole heap is dropped at once.
* **dense**: the pre-skip-ahead behaviour — every heap entry, live or
  cancelled, is popped one at a time.  Kept selectable so equivalence
  tests can assert the two modes produce identical event orderings.

The loop can also drive a *staged probe batch* (see :meth:`stage_batch`):
the scanner hands over parallel arrays of fire times instead of pushing
one closure per probe onto the heap.  Staged entries consume sequence
numbers exactly as heap scheduling would, so the merged ``(when, seq)``
ordering — and therefore every downstream artifact — is byte-identical
to the heap-backed path.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True, eq=True)
class ScheduledEvent:
    """Handle for a scheduled callback, usable for cancellation."""

    when: float
    seq: int
    #: the loop's live heap entry; ``entry[2]`` is ``None`` once the
    #: event has fired or been cancelled.  Excluded from equality so
    #: handles still compare by ``(when, seq)``.
    entry: list = field(default_factory=list, compare=False, repr=False)

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


@dataclass
class EventLoop:
    """A minimal, deterministic discrete-event scheduler.

    Time is a float in seconds.  ``run()`` drains the heap; ``run_until``
    stops once the clock would pass a deadline.  Cancellation nulls the
    heap entry in place — O(1), no auxiliary tombstone set — and
    ``pending()`` counts only events that will actually fire.
    """

    now: float = 0.0
    #: skip cancelled entries wholesale instead of stepping each one
    #: (see module docstring).  Both modes fire the same callbacks in
    #: the same order; only the cost of traversing dead entries differs.
    skip_ahead: bool = True
    _heap: list[list] = field(default_factory=list)
    _seq: itertools.count = field(default_factory=lambda: itertools.count())
    #: count of cancelled entries still physically in the heap.
    _tombstones: int = 0
    events_processed: int = 0
    # -- staged probe batch (see stage_batch) ---------------------------
    _stage_when: Sequence[float] | None = field(default=None, repr=False)
    _stage_fire: Callable[[int], None] | None = field(default=None, repr=False)
    _stage_refill: Callable[[], None] | None = field(default=None, repr=False)
    _stage_seq0: int = 0
    _stage_pos: int = 0
    #: optional peak-occupancy gauges (see ``bind_metrics``); ``None``
    #: keeps scheduling at one extra attribute check when disabled.
    _mx_depth: object | None = field(default=None, repr=False)
    _mx_tombstones: object | None = field(default=None, repr=False)

    def bind_metrics(self, registry) -> None:
        """Record peak heap depth and tombstone count into *registry*.

        Occupancy depends on how work interleaves (shards batch probe
        events differently), so both gauges are excluded from
        shard-equivalence comparisons.
        """
        self._mx_depth = registry.gauge(
            "eventloop_queue_depth_peak",
            "largest number of events simultaneously queued",
            deterministic=False,
        )
        self._mx_tombstones = registry.gauge(
            "eventloop_tombstones_peak",
            "largest number of pending cancellations",
            deterministic=False,
        )

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> ScheduledEvent:
        """Run *callback* after *delay* seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(
        self, when: float, callback: Callable[[], None]
    ) -> ScheduledEvent:
        """Run *callback* at absolute simulated time *when*."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        entry = [when, next(self._seq), callback]
        heapq.heappush(self._heap, entry)
        mx = self._mx_depth
        if mx is not None:
            mx.set_max(len(self._heap))
        return ScheduledEvent(when, entry[1], entry)

    def schedule_many(
        self, events: Iterable[tuple[float, Callable[[], None]]]
    ) -> list[ScheduledEvent]:
        """Batch-schedule ``(when, callback)`` pairs at absolute times.

        For bursty producers (the scanner's streaming probe batches) one
        ``heapify`` over the combined heap beats pushing each event
        individually; small batches fall back to ordinary pushes.
        Callbacks sharing a timestamp fire in the order given, exactly
        as if scheduled one by one.
        """
        added: list[list] = []
        for when, callback in events:
            if when < self.now:
                raise ValueError(
                    f"cannot schedule in the past: {when} < {self.now}"
                )
            added.append([when, next(self._seq), callback])
        if not added:
            return []
        heap = self._heap
        # k pushes cost O(k log n); one heapify costs O(n + k).
        if len(added) * 4 >= len(heap):
            heap.extend(added)
            heapq.heapify(heap)
        else:
            for item in added:
                heapq.heappush(heap, item)
        mx = self._mx_depth
        if mx is not None:
            mx.set_max(len(heap))
        return [
            ScheduledEvent(entry[0], entry[1], entry) for entry in added
        ]

    def stage_batch(
        self,
        whens: Sequence[float],
        fire: Callable[[int], None],
        refill: Callable[[], None],
    ) -> None:
        """Feed a time-ordered probe batch without materializing heap entries.

        *whens* is an ascending sequence of absolute fire times;
        ``fire(i)`` sends probe *i*; ``refill()`` runs once the batch is
        exhausted (at ``whens[-1]``, immediately after the final fire)
        and typically stages the next batch.  One sequence number is
        consumed per probe plus one for the refill — the same stream the
        heap-backed pump would allocate for ``schedule_many`` plus its
        re-arm event — so staged and heap-scheduled campaigns interleave
        with other events identically.

        Only one batch may be staged at a time; staged entries cannot be
        cancelled (probe suppression happens inside the fire callback).
        """
        if not whens:
            raise ValueError("cannot stage an empty batch")
        if self._stage_when is not None:
            raise RuntimeError("a staged batch is already active")
        if whens[0] < self.now:
            raise ValueError(
                f"cannot stage in the past: {whens[0]} < {self.now}"
            )
        self._stage_when = whens
        self._stage_fire = fire
        self._stage_refill = refill
        self._stage_seq0 = next(self._seq)
        self._stage_pos = 0
        # Burn one seq per remaining probe plus the refill slot.
        for _ in range(len(whens)):
            next(self._seq)

    def _clear_stage(self) -> None:
        self._stage_when = None
        self._stage_fire = None
        self._stage_refill = None

    def _stage_head(self) -> tuple[float, int] | None:
        whens = self._stage_when
        if whens is None:
            return None
        pos = self._stage_pos
        return (whens[pos], self._stage_seq0 + pos)

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a previously scheduled event (idempotent).

        Cancelling an event that already fired (or was already
        cancelled) is a no-op.  A pending cancellation nulls the heap
        entry in place; the entry is discarded when it surfaces, or
        removed wholesale by compaction when dead entries come to
        dominate the heap (a retry-heavy scan cancels one timeout timer
        per answered probe).
        """
        entry = event.entry
        if not entry or entry[2] is None:
            return
        entry[2] = None
        self._tombstones += 1
        mx = self._mx_tombstones
        if mx is not None:
            mx.set_max(self._tombstones)
        if (
            self._tombstones >= self.COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 >= len(self._heap)
        ):
            self._compact()

    #: Tombstones below this count are never worth a heap rebuild.
    COMPACT_MIN_TOMBSTONES = 1024

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        O(n) now against O(n) dead weight on every subsequent
        push/pop.  Handles stay valid: they reference the surviving
        entries directly.
        """
        self._heap = [entry for entry in self._heap if entry[2] is not None]
        heapq.heapify(self._heap)
        self._tombstones = 0

    def pending(self) -> int:
        """Return the number of events still due to fire.

        Cancelled-but-unpopped entries are excluded — skip-ahead mode
        may drop them without ever popping them individually, so they
        must not count as pending work.  Staged probes not yet fired
        (plus their batch's refill slot) do count.
        """
        live = len(self._heap) - self._tombstones
        whens = self._stage_when
        if whens is not None:
            live += len(whens) - self._stage_pos + 1
        return live

    def _skip_dead(self) -> None:
        """Discard the run of cancelled entries at the top of the heap.

        When *everything* left is cancelled (the tail of a retry-heavy
        scan after its last answer arrived), the heap is dropped in one
        ``clear`` instead of popping each dead timer individually.
        """
        heap = self._heap
        if self._tombstones and self._tombstones == len(heap):
            heap.clear()
            self._tombstones = 0
            return
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
            self._tombstones -= 1

    def run(self, max_events: int | None = None) -> int:
        """Drain the event heap; return the number of callbacks invoked.

        ``max_events`` bounds the number of callbacks, guarding against
        accidental livelock in tests.
        """
        processed = 0
        if self.skip_ahead:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                self._skip_dead()
                if not self._heap and self._stage_when is None:
                    break
                processed += self._step_sparse()
            return processed
        while self._heap or self._stage_when is not None:
            if max_events is not None and processed >= max_events:
                break
            processed += self._step()
        return processed

    def run_until(self, deadline: float) -> int:
        """Process events with timestamps <= *deadline*, then advance to it."""
        processed = 0
        if self.skip_ahead:
            while True:
                self._skip_dead()
                head = self._stage_head()
                heap = self._heap
                if heap and (
                    head is None or (heap[0][0], heap[0][1]) < head
                ):
                    head = (heap[0][0], heap[0][1])
                if head is None or head[0] > deadline:
                    break
                processed += self._step_sparse()
            self.now = max(self.now, deadline)
            return processed
        while True:
            head = self._stage_head()
            heap = self._heap
            if heap and (head is None or (heap[0][0], heap[0][1]) < head):
                head = (heap[0][0], heap[0][1])
            if head is None or head[0] > deadline:
                break
            processed += self._step()
        self.now = max(self.now, deadline)
        return processed

    def _fire_staged(self) -> int:
        """Fire the next staged probe (and the refill when it was the last)."""
        whens = self._stage_when
        pos = self._stage_pos
        when = whens[pos]
        self._stage_pos = pos + 1
        self.now = when
        fire = self._stage_fire
        fire(pos)
        self.events_processed += 1
        if self._stage_pos >= len(whens):
            # The refill occupies the next sequence number at the
            # batch's final timestamp, exactly like the heap pump's
            # re-arm event: it runs before any same-time event
            # scheduled later.
            refill = self._stage_refill
            self._clear_stage()
            refill()
            self.events_processed += 1
            return 2
        return 1

    def _step_sparse(self) -> int:
        """Fire the next live event (heap or staged); heap head is live."""
        heap = self._heap
        head = self._stage_head()
        if head is not None and (
            not heap or head < (heap[0][0], heap[0][1])
        ):
            return self._fire_staged()
        entry = heapq.heappop(heap)
        when, _seq, callback = entry
        entry[2] = None
        self.now = when
        callback()
        self.events_processed += 1
        return 1

    def _step(self) -> int:
        """Dense step: pop exactly one entry, dead or alive."""
        heap = self._heap
        head = self._stage_head()
        if head is not None and (
            not heap or head < (heap[0][0], heap[0][1])
        ):
            return self._fire_staged()
        entry = heapq.heappop(heap)
        when, _seq, callback = entry
        if callback is None:
            self._tombstones -= 1
            return 0
        entry[2] = None
        self.now = when
        callback()
        self.events_processed += 1
        return 1
