"""The simulated Internet fabric: hosts, borders, and packet delivery.

The fabric glues the other netsim pieces together.  Hosts attach to an
autonomous system at one or more addresses; sending a packet walks it
through the origin AS border (OSAV), the global routing table, and the
destination AS border (DSAV / martian filtering) before handing it to
the host bound at the destination address.  Every drop is counted by
reason, which the test suite and the analysis layer lean on heavily.

Delivery is asynchronous through the shared :class:`~repro.netsim.events.
EventLoop`; per-path latency is deterministic for a given fabric seed so
experiments replay identically.
"""

from __future__ import annotations

import zlib
from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass, field

from .addresses import Address, intern_address
from .autonomous_system import AutonomousSystem, BorderVerdict
from .determinism import stable_fraction
from .events import EventLoop
from .packet import Packet
from .routing import RoutingTable


class Host:
    """Base class for anything attached to the fabric.

    Subclasses override :meth:`handle_packet`.  A host may be bound at
    multiple addresses (e.g. a dual-stack DNS server).
    """

    def __init__(self, name: str, asn: int) -> None:
        self.name = name
        self.asn = asn
        self.addresses: list[Address] = []
        self.fabric: "Fabric | None" = None

    def handle_packet(self, packet: Packet) -> None:
        """Process an inbound packet; default implementation discards it."""

    def send(self, packet: Packet) -> None:
        """Inject *packet* into the fabric from this host."""
        if self.fabric is None:
            raise RuntimeError(f"host {self.name} is not attached to a fabric")
        self.fabric.send(self, packet)


#: Observer invoked for every packet the fabric accepts for delivery.
PacketTap = Callable[[Packet, Host], None]


# -- drop reasons ----------------------------------------------------------
#
# Every way the fabric can discard a packet names exactly one of these
# constants.  The same string is used for the ``drop_counts`` key, the
# ``fabric_drops_total`` metric label, and any diagnostic message, so a
# count in telemetry can always be traced back to one code path.

#: In-flight loss roll (congestion / rate limiting), content-keyed.
DROP_LOSS = "loss"
#: No announcement covers the destination address.
DROP_NO_ROUTE = "no-route"
#: A route exists but its origin ASN was never registered as a system.
DROP_UNROUTED_ASN = "unrouted-asn"
#: Destination AS reached, but no host is bound at the address.
DROP_NO_HOST = "no-host"
#: Border filters (values shared with :class:`BorderVerdict`).
DROP_OSAV = BorderVerdict.DROP_OSAV.value
DROP_DSAV = BorderVerdict.DROP_DSAV.value
DROP_MARTIAN = BorderVerdict.DROP_MARTIAN.value
DROP_SUBNET_SAV = BorderVerdict.DROP_SUBNET_SAV.value
#: Fault-plan injections (see :mod:`repro.netsim.faults`): a windowed
#: burst-loss roll, a blackholed destination prefix, a resolver outage.
DROP_FAULT_LOSS = "fault-loss"
DROP_FAULT_BLACKHOLE = "fault-blackhole"
DROP_FAULT_OUTAGE = "fault-outage"
#: BGP-dynamics fault clauses: traffic swallowed by a prefix hijacker,
#: or forwarded along a stale (stuck) route whose origin went dark.
DROP_FAULT_HIJACK = "fault-hijacked"
DROP_FAULT_STUCK = "fault-stuck-route"

#: The exhaustive set; ``Fabric._drop`` refuses anything else, so a new
#: drop path cannot ship without registering its reason here.
DROP_REASONS = frozenset(
    {
        DROP_LOSS,
        DROP_NO_ROUTE,
        DROP_UNROUTED_ASN,
        DROP_NO_HOST,
        DROP_OSAV,
        DROP_DSAV,
        DROP_MARTIAN,
        DROP_SUBNET_SAV,
        DROP_FAULT_LOSS,
        DROP_FAULT_BLACKHOLE,
        DROP_FAULT_OUTAGE,
        DROP_FAULT_HIJACK,
        DROP_FAULT_STUCK,
    }
)


@dataclass
class DropRecord:
    """One dropped packet with the reason it was discarded."""

    packet: Packet
    reason: str
    asn: int | None


@dataclass
class Fabric:
    """Simulated Internet connecting autonomous systems and hosts."""

    loop: EventLoop = field(default_factory=EventLoop)
    routes: RoutingTable = field(default_factory=RoutingTable)
    seed: int = 0
    base_latency: float = 0.010
    jitter_latency: float = 0.040
    #: fraction of otherwise-deliverable packets dropped in flight
    #: (congestion, rate limiting).  Deterministic for a given seed.
    loss_rate: float = 0.0
    record_drops: bool = False

    _systems: dict[int, AutonomousSystem] = field(default_factory=dict)
    _hosts: dict[Address, Host] = field(default_factory=dict)
    _taps: list[PacketTap] = field(default_factory=list)
    #: deterministic per-AS-pair latency, memoized (crc32 + string
    #: formatting per packet is measurable at campaign scale).
    _latency_cache: dict[tuple[int, int], float] = field(
        default_factory=dict, repr=False
    )
    drop_counts: Counter = field(default_factory=Counter)
    dropped: list[DropRecord] = field(default_factory=list)
    delivered_count: int = 0
    #: optional observability registry; when unset the per-packet cost
    #: of the instrumentation below is a single attribute check.
    metrics: object | None = field(default=None, repr=False)
    _mx_delivered: object | None = field(default=None, repr=False)
    _mx_drops: object | None = field(default=None, repr=False)
    #: optional event journal (duck-typed, see repro.obs.journal); when
    #: unset the per-packet cost is one attribute check in ``send``.
    _journal: object | None = field(default=None, repr=False)
    #: optional fault injector (see :meth:`install_faults`); ``None``
    #: keeps the packet path at one attribute check per send.
    faults: object | None = field(default=None, repr=False)

    def bind_metrics(self, registry) -> None:
        """Collect delivery/drop counters into *registry* from now on."""
        self.metrics = registry
        self._mx_delivered = registry.counter(
            "fabric_delivered_total", "packets handed to a bound host"
        )
        self._mx_drops = registry.counter(
            "fabric_drops_total",
            "packets discarded, by drop reason and border ASN",
            ("reason", "asn"),
        )
        if self.faults is not None:
            self.faults.bind_metrics(registry)

    def bind_journal(self, journal) -> None:
        """Record a ``fabric.path`` event per DNS query from now on."""
        self._journal = journal

    def install_faults(self, injector) -> None:
        """Subject the packet path to *injector*'s fault plan.

        The injector (a :class:`repro.netsim.faults.FaultInjector`, or
        anything duck-compatible) is consulted after the border filters
        accept a packet — faults model the network misbehaving, not the
        filters — and again when delivery latency is computed.  Pass
        the result of ``FaultPlan.compile()``; a ``None`` (zero-fault
        plan) is accepted and leaves the fabric untouched.
        """
        self.faults = injector
        if injector is not None and self.metrics is not None:
            injector.bind_metrics(self.metrics)

    # -- topology construction -------------------------------------------

    def add_system(self, system: AutonomousSystem) -> AutonomousSystem:
        """Register *system* and announce all of its prefixes."""
        if system.asn in self._systems:
            raise ValueError(f"duplicate ASN {system.asn}")
        self._systems[system.asn] = system
        for prefix in system.prefixes():
            self.routes.announce(prefix, system.asn)
        return system

    def system(self, asn: int) -> AutonomousSystem:
        """Return the AS registered under *asn* (KeyError if absent)."""
        return self._systems[asn]

    def systems(self) -> list[AutonomousSystem]:
        """Return all registered autonomous systems."""
        return list(self._systems.values())

    def attach(self, host: Host, *addresses: Address) -> Host:
        """Bind *host* at each address and wire it to this fabric."""
        if host.asn not in self._systems:
            raise ValueError(f"host {host.name}: unknown ASN {host.asn}")
        for address in addresses:
            address = intern_address(address)
            if address in self._hosts:
                raise ValueError(f"address already bound: {address}")
            self._hosts[address] = host
            host.addresses.append(address)
        host.fabric = self
        return host

    def bind_address(self, host: Host, address: Address) -> None:
        """Bind an additional address to an already-attached host."""
        if host.fabric is not self:
            raise ValueError(f"host {host.name} is not attached to this fabric")
        address = intern_address(address)
        if address in self._hosts:
            raise ValueError(f"address already bound: {address}")
        self._hosts[address] = host
        host.addresses.append(address)

    def host_at(self, address: Address) -> Host | None:
        """Return the host bound at *address*, if any."""
        return self._hosts.get(address)

    def add_tap(self, tap: PacketTap) -> None:
        """Register an observer called for each successfully routed packet."""
        self._taps.append(tap)

    # -- packet movement ---------------------------------------------------

    def send(self, origin: Host, packet: Packet) -> None:
        """Carry *packet* from *origin* toward its destination address.

        The packet faces, in order: the origin AS egress filter (OSAV),
        global routing on the destination address, and the destination AS
        ingress filter (DSAV / martians).  Intra-AS traffic never crosses
        a border and so skips both filters, mirroring the fact that DSAV
        is a border mechanism and cannot protect against insiders.
        """
        origin_as = self._systems.get(origin.asn)
        if origin_as is None:
            raise ValueError(
                f"host {origin.name} sends from ASN {origin.asn}, which was "
                f"never registered with this fabric (add_system first)"
            )
        # Flight-recorder entry for this traversal.  Only flows the
        # scan client announced are probe-relevant: resolver upstream
        # queries, retransmissions and responses have nothing a probe
        # id can join against, and recording them would triple the
        # journal for no forensic value.
        jr = self._journal
        rec: str | None = None
        rec_to_asn: int | None = None
        if (
            jr is not None
            and packet.dport == 53
            and jr.wants_flow(packet.src, packet.dst, packet.sport)
        ):
            rec = jr.fabric_head(
                self.loop.now,
                packet.src,
                packet.dst,
                packet.sport,
                packet.dport,
                packet.transport.value,
            )

        faults = self.faults
        if faults is not None and faults.next_route_event <= self.loop.now:
            # BGP dynamics: apply every announcement mutation whose sim
            # time has passed.  Keyed purely on packet timestamps, so
            # any shard's packets observe the same table states.
            faults.apply_route_events(self.routes, self.loop.now)

        dst_route = self.routes.lookup(packet.dst)
        if dst_route is None:
            if rec is not None:
                jr.fabric_done(rec, origin_as.asn, None, DROP_NO_ROUTE)
            self._drop(packet, DROP_NO_ROUTE, None)
            return
        dest_as = self._systems.get(dst_route.asn)
        if dest_as is None:
            if rec is not None:
                jr.fabric_done(
                    rec, origin_as.asn, dst_route.asn, DROP_UNROUTED_ASN
                )
            self._drop(packet, DROP_UNROUTED_ASN, dst_route.asn)
            return

        crossing_border = dest_as.asn != origin_as.asn
        #: summed per-link latency when a multi-hop policy path is
        #: walked; ``None`` keeps the legacy star pair latency.
        path_latency: float | None = None
        if crossing_border:
            rec_to_asn = dest_as.asn
            walk = None
            policy = self.routes.policy
            if policy is not None:
                # Policy-aware mode: the packet follows the compiled
                # valley-free AS path hop by hop.  ``as_path`` is a
                # bounded memo over precomputed next-hop columns — no
                # graph search happens here.
                walk = policy.as_path(origin_as.asn, dest_as.asn)
                if walk is None:
                    if rec is not None:
                        jr.fabric_done(
                            rec, origin_as.asn, rec_to_asn, DROP_NO_ROUTE
                        )
                    self._drop(packet, DROP_NO_ROUTE, origin_as.asn)
                    return
                if rec is not None:
                    rec += jr.fabric_aspath(walk[0], walk[1])
            verdict = origin_as.egress_verdict(packet)
            if rec is not None:
                rec += jr.fabric_egress(
                    origin_as.asn,
                    origin_as.osav,
                    verdict.value,
                    origin_as.covering_prefix(packet.src),
                )
            if verdict is not BorderVerdict.ACCEPT:
                if rec is not None:
                    jr.fabric_done(
                        rec, origin_as.asn, rec_to_asn, verdict.value
                    )
                self._drop(packet, verdict.value, origin_as.asn)
                return
            if walk is not None:
                hops = walk[0]
                total = 0.0
                prev = hops[0]
                for asn in hops[1:-1]:
                    total += self._latency(prev, asn)
                    prev = asn
                    transit_as = self._systems.get(asn)
                    if transit_as is None:
                        continue
                    verdict = transit_as.transit_verdict(packet)
                    if verdict is not BorderVerdict.ACCEPT:
                        if rec is not None:
                            rec += jr.fabric_transit(asn, verdict.value)
                            jr.fabric_done(
                                rec, origin_as.asn, rec_to_asn, verdict.value
                            )
                        self._drop(packet, verdict.value, asn)
                        return
                total += self._latency(prev, hops[-1])
                path_latency = total
            verdict = dest_as.ingress_verdict(packet)
            if rec is not None:
                rec += jr.fabric_ingress(
                    dest_as.asn,
                    dest_as.dsav,
                    dest_as.martian_filtering,
                    verdict.value,
                    dest_as.covering_prefix(packet.src),
                )
            if verdict is not BorderVerdict.ACCEPT:
                if rec is not None:
                    jr.fabric_done(
                        rec, origin_as.asn, rec_to_asn, verdict.value
                    )
                self._drop(packet, verdict.value, dest_as.asn)
                return
            # One TTL decrement per inter-AS link on the walked path;
            # star mode keeps its single origin→destination crossing.
            packet = packet.hop(len(walk[0]) - 1 if walk is not None else 1)
        else:
            rec_to_asn = dest_as.asn

        if faults is not None:
            reason = faults.drop_reason(
                packet, origin_as.asn, dest_as.asn, self.loop.now
            )
            if reason is not None:
                if rec is not None:
                    jr.fabric_done(rec, origin_as.asn, rec_to_asn, reason)
                self._drop(
                    packet,
                    reason,
                    None if reason == DROP_FAULT_LOSS else dest_as.asn,
                )
                return

        target = self._hosts.get(packet.dst)
        if target is None:
            if rec is not None:
                jr.fabric_done(rec, origin_as.asn, rec_to_asn, DROP_NO_HOST)
            self._drop(packet, DROP_NO_HOST, dest_as.asn)
            return

        if self.loss_rate > 0 and self._loss_roll(packet) < self.loss_rate:
            if rec is not None:
                jr.fabric_done(rec, origin_as.asn, rec_to_asn, DROP_LOSS)
            self._drop(packet, DROP_LOSS, None)
            return

        if rec is not None:
            jr.fabric_done(rec, origin_as.asn, rec_to_asn, "delivered")
        for tap in self._taps:
            tap(packet, target)
        latency = (
            path_latency
            if path_latency is not None
            else self._latency(origin.asn, dest_as.asn)
        )
        if faults is not None:
            mods = faults.delivery_mods(
                packet, origin_as.asn, dest_as.asn, self.loop.now
            )
            if mods is not None:
                factor, extra, duplicate_delay, kinds = mods
                latency = latency * factor + extra
                if duplicate_delay is not None:
                    self.loop.schedule(
                        latency + duplicate_delay,
                        lambda: self._deliver(target, packet),
                    )
                if rec is not None:
                    jr.emit(
                        "fault.injected",
                        self.loop.now,
                        None,
                        src=jr.addr(packet.src),
                        dst=jr.addr(packet.dst),
                        sport=packet.sport,
                        kinds=kinds,
                    )
        self.loop.schedule(latency, lambda: self._deliver(target, packet))

    def _deliver(self, target: Host, packet: Packet) -> None:
        self.delivered_count += 1
        mx = self._mx_delivered
        if mx is not None:
            mx.inc()
        target.handle_packet(packet)

    def _loss_roll(self, packet: Packet) -> float:
        """Per-packet loss roll, keyed on the packet's own content.

        A consumed RNG stream would make every packet's fate depend on
        how many other packets happened to precede it — which differs
        between a sharded and an unsharded run of the same campaign.
        Hashing the packet instead keeps the decision a pure function of
        (fabric seed, packet), so shard merges replay losses exactly.
        """
        return stable_fraction(
            self.seed,
            "loss",
            int(packet.src),
            int(packet.dst),
            packet.sport,
            packet.dport,
            packet.transport.value,
            int(packet.tcp_flags),
            packet.payload,
        )

    def _drop(self, packet: Packet, reason: str, asn: int | None) -> None:
        assert reason in DROP_REASONS, f"unregistered drop reason {reason!r}"
        self.drop_counts[reason] += 1
        mx = self._mx_drops
        if mx is not None:
            mx.inc(1, (reason, "" if asn is None else str(asn)))
        if self.record_drops:
            self.dropped.append(DropRecord(packet, reason, asn))

    def _latency(self, src_asn: int, dst_asn: int) -> float:
        """Deterministic per-AS-pair latency derived from the fabric seed."""
        if src_asn == dst_asn:
            return self.base_latency / 2
        pair = (
            (src_asn, dst_asn) if src_asn < dst_asn else (dst_asn, src_asn)
        )
        latency = self._latency_cache.get(pair)
        if latency is None:
            key = f"{self.seed}:{pair[0]}:{pair[1]}"
            fraction = (zlib.crc32(key.encode()) % 1000) / 1000.0
            latency = self.base_latency + fraction * self.jitter_latency
            self._latency_cache[pair] = latency
        return latency

    # -- convenience -------------------------------------------------------

    def run(self, max_events: int | None = None) -> int:
        """Drain the event loop (see :meth:`EventLoop.run`)."""
        return self.loop.run(max_events)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.loop.now
