"""Autonomous system model with border filtering policy.

Each AS owns a set of announced prefixes and a border policy deciding
which packets may leave (origin-side source address validation, OSAV /
BCP 38) and which may enter (destination-side SAV, DSAV, plus martian
filtering of private and loopback sources).  These two knobs are the
variables the paper measures: the scan client sits in an AS with
``osav=False``, and the experiment detects which target ASes run with
``dsav=False``.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from ipaddress import ip_network

from .addresses import (
    Address,
    IntervalTable,
    Network,
    is_martian,
    subnet_of,
)
from .packet import Packet


class BorderVerdict(enum.Enum):
    """Result of evaluating a packet at an AS border."""

    ACCEPT = "accept"
    DROP_OSAV = "drop-osav"
    DROP_DSAV = "drop-dsav"
    DROP_MARTIAN = "drop-martian"
    DROP_SUBNET_SAV = "drop-subnet-sav"


@dataclass
class AutonomousSystem:
    """One autonomous system: number, prefixes and border policy.

    ``osav``
        When true, packets leaving the AS whose source address is not
        covered by one of the AS's announced prefixes are dropped at the
        border (BCP 38 egress filtering).  Private and loopback sources
        are likewise stopped, since they are never announced.
    ``dsav``
        When true, packets *entering* the AS whose source address claims
        to originate from one of the AS's own prefixes are dropped.
    ``martian_filtering``
        When true, inbound packets with private or loopback sources are
        dropped.  Networks commonly deploy this even without full DSAV,
        which is why the paper's private/loopback source categories reach
        far fewer targets than same-prefix sources (Table 3).
    ``subnet_sav_v4``
        Access-layer anti-spoofing (IP Source Guard / per-port uRPF):
        inbound IPv4 packets whose source lies in the destination's own
        /24 are dropped even when AS-level DSAV is absent.  Deployment
        is per access segment, so only ``subnet_sav_coverage`` of the
        AS's /24s (a deterministic subset) are protected.  Its IPv6
        counterpart is rarely deployed, which contributes to same-prefix
        sources reaching 84% of IPv6 targets but only 63% of IPv4
        targets in the paper's Table 3.
    """

    asn: int
    name: str = ""
    osav: bool = True
    dsav: bool = True
    martian_filtering: bool = True
    subnet_sav_v4: bool = False
    subnet_sav_coverage: float = 1.0
    country: str | None = None
    _prefixes: dict[int, list[Network]] = field(
        default_factory=lambda: {4: [], 6: []}
    )
    #: version -> compiled IntervalTable over announced prefixes; rebuilt
    #: lazily after add_prefix so the per-packet border checks bisect
    #: instead of scanning ipaddress objects.
    _span_tables: dict[int, IntervalTable] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"invalid ASN: {self.asn}")
        if not self.name:
            self.name = f"AS{self.asn}"

    def add_prefix(self, prefix: Network | str) -> Network:
        """Register *prefix* as announced by this AS and return it."""
        if isinstance(prefix, str):
            prefix = ip_network(prefix)
        self._prefixes[prefix.version].append(prefix)
        self._span_tables.pop(prefix.version, None)
        return prefix

    def prefixes(self, version: int | None = None) -> list[Network]:
        """Return announced prefixes, optionally restricted to a family."""
        if version is not None:
            return list(self._prefixes[version])
        return list(self._prefixes[4]) + list(self._prefixes[6])

    def _spans(self, version: int) -> IntervalTable:
        table = self._span_tables.get(version)
        if table is None:
            table = IntervalTable.from_networks(self._prefixes[version])
            self._span_tables[version] = table
        return table

    def originates(self, address: Address) -> bool:
        """Return ``True`` if *address* is inside any announced prefix."""
        return self._spans(address.version).contains_value(int(address))

    def covering_prefix(self, address: Address) -> Network | None:
        """The announced prefix containing *address*, if any.

        Diagnostic companion to :meth:`originates`: names the concrete
        filter entry a border verdict matched (the journal records it as
        evidence).  Linear scan — only called on journaled border
        crossings, never on the plain packet hot path.
        """
        for prefix in self._prefixes[address.version]:
            if address in prefix:
                return prefix
        return None

    def egress_verdict(self, packet: Packet) -> BorderVerdict:
        """Evaluate *packet* leaving this AS (OSAV / BCP 38)."""
        if not self.osav:
            return BorderVerdict.ACCEPT
        if self.originates(packet.src):
            return BorderVerdict.ACCEPT
        return BorderVerdict.DROP_OSAV

    def transit_verdict(self, packet: Packet) -> BorderVerdict:
        """Evaluate *packet* carried *through* this AS as third-party
        transit traffic (policy-aware topologies only).

        Transit networks do not run uRPF against customer cones in this
        model, but they do commonly drop martian sources and packets
        claiming to originate from the carrier's own address space —
        the two filters with well-defined semantics at a transit
        border.
        """
        if is_martian(packet.src):
            if self.martian_filtering:
                return BorderVerdict.DROP_MARTIAN
            return BorderVerdict.ACCEPT
        if self.dsav and self.originates(packet.src):
            return BorderVerdict.DROP_DSAV
        return BorderVerdict.ACCEPT

    def ingress_verdict(self, packet: Packet) -> BorderVerdict:
        """Evaluate *packet* entering this AS (DSAV + martian filtering)."""
        if is_martian(packet.src):
            if self.martian_filtering:
                return BorderVerdict.DROP_MARTIAN
            return BorderVerdict.ACCEPT
        if self.dsav and self.originates(packet.src):
            return BorderVerdict.DROP_DSAV
        if (
            self.subnet_sav_v4
            and packet.version == 4
            # /24 equality as an integer shift, without building networks.
            and int(packet.src) >> 8 == int(packet.dst) >> 8
            and self._subnet_protected(subnet_of(packet.dst))
        ):
            return BorderVerdict.DROP_SUBNET_SAV
        return BorderVerdict.ACCEPT

    def _subnet_protected(self, subnet: Network) -> bool:
        """Deterministically select the access segments running
        source-guard, at roughly ``subnet_sav_coverage`` density."""
        if self.subnet_sav_coverage >= 1.0:
            return True
        digest = zlib.crc32(f"{self.asn}:{subnet}".encode()) % 1000
        return digest < self.subnet_sav_coverage * 1000

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AutonomousSystem(asn={self.asn}, osav={self.osav}, "
            f"dsav={self.dsav}, prefixes={len(self._prefixes[4])}v4/"
            f"{len(self._prefixes[6])}v6)"
        )
