"""repro: reproduction of "Behind Closed Doors: A Network Tale of
Spoofing, Intrusion, and False DNS Security" (Deccio et al., IMC 2020).

The package is layered bottom-up:

* :mod:`repro.netsim` — simulated Internet: addresses, routing,
  OSAV/DSAV border policy, packet delivery.
* :mod:`repro.oskernel` — per-OS behaviour: ephemeral port allocation,
  spoofed-local packet admission, TCP/IP fingerprints.
* :mod:`repro.dns` — wire-format DNS: messages, zones, caching
  recursive resolvers, authoritative servers.
* :mod:`repro.fingerprint` — p0f-style SYN matching and the Beta
  port-range OS classifier.
* :mod:`repro.core` — the paper's methodology: spoofed-source scanning,
  follow-ups, collection, and the analyses behind every table/figure.
* :mod:`repro.scenarios` — deterministic synthetic-Internet and lab
  builders.
* :mod:`repro.attacks` — cache-poisoning simulation quantifying the
  stakes.

Quickstart::

    from repro.scenarios import ScenarioParams, build_internet
    from repro.core import ScanConfig, headline, render_headline

    scenario = build_internet(ScenarioParams(seed=7, n_ases=60))
    targets = scenario.target_set()
    scanner, collector = scenario.make_scanner(ScanConfig(duration=120.0))
    scanner.run()
    print(render_headline(headline(targets, collector)))
"""

__version__ = "1.0.0"

__all__ = [
    "attacks",
    "core",
    "dns",
    "fingerprint",
    "netsim",
    "oskernel",
    "scenarios",
]
