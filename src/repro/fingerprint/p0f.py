"""p0f-style passive TCP/IP fingerprinting.

The paper ran p0f over the DNS-over-TCP connections elicited by the TC
follow-up query (Section 5.3.1).  This module reproduces the relevant
mechanics: a database of SYN signatures (initial TTL, window size, MSS,
window scale, option layout) and a matcher that first recovers the
likely initial TTL from the hop-decremented value observed on the wire,
then requires an exact match on the remaining fields.  Signatures not in
the database yield ``None`` — p0f left ~90% of the paper's resolvers
unclassified, and the synthetic population reproduces that by carrying
perturbed signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netsim.packet import TCPSignature
from ..oskernel import profiles

#: Initial TTLs used by real stacks; observed TTLs are rounded up to the
#: nearest of these to undo in-flight decrements.
_CANONICAL_TTLS = (32, 64, 128, 255)

#: Coarse labels the analysis buckets fingerprints into (Table 4 columns).
LABEL_LINUX = "Linux"
LABEL_WINDOWS = "Windows"
LABEL_FREEBSD = "FreeBSD"
LABEL_BAIDU = "BaiduSpider"


def estimate_initial_ttl(observed_ttl: int) -> int:
    """Return the smallest canonical initial TTL >= *observed_ttl*."""
    for candidate in _CANONICAL_TTLS:
        if observed_ttl <= candidate:
            return candidate
    return 255


@dataclass(frozen=True, slots=True)
class P0fSignature:
    """One database entry: a label plus the fields that must match."""

    label: str
    initial_ttl: int
    window_size: int
    mss: int
    window_scale: int
    options: tuple[str, ...]

    def matches(self, signature: TCPSignature, observed_ttl: int) -> bool:
        return (
            estimate_initial_ttl(observed_ttl) == self.initial_ttl
            and signature.window_size == self.window_size
            and signature.mss == self.mss
            and signature.window_scale == self.window_scale
            and signature.options == self.options
        )


def _entry(label: str, signature: TCPSignature) -> P0fSignature:
    return P0fSignature(
        label,
        signature.initial_ttl,
        signature.window_size,
        signature.mss,
        signature.window_scale,
        signature.options,
    )


@dataclass
class P0fDatabase:
    """Signature database with exact-match lookup."""

    signatures: list[P0fSignature] = field(default_factory=list)

    @classmethod
    def default(cls) -> "P0fDatabase":
        """Database covering the stacks in the paper's lab plus Baidu."""
        return cls(
            [
                _entry(LABEL_LINUX, profiles.LINUX_MODERN.tcp_signature),
                _entry(LABEL_LINUX, profiles.LINUX_OLD.tcp_signature),
                _entry(LABEL_FREEBSD, profiles.FREEBSD.tcp_signature),
                _entry(LABEL_WINDOWS, profiles.WINDOWS_MODERN.tcp_signature),
                _entry(LABEL_WINDOWS, profiles.WINDOWS_2003.tcp_signature),
                _entry(LABEL_BAIDU, profiles.BAIDU_SPIDER.tcp_signature),
            ]
        )

    def add(self, label: str, signature: TCPSignature) -> None:
        """Register *signature* under *label*."""
        self.signatures.append(_entry(label, signature))

    def classify(
        self, signature: TCPSignature | None, observed_ttl: int | None
    ) -> str | None:
        """Return the label matching a captured SYN, or ``None``.

        ``None`` inputs (no TCP exchange observed for the host) and
        unknown signatures both come back unclassified, mirroring p0f's
        behaviour on traffic it has no signature for.
        """
        if signature is None or observed_ttl is None:
            return None
        for entry in self.signatures:
            if entry.matches(signature, observed_ttl):
                return entry.label
        return None
