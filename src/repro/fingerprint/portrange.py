"""Source-port-range modelling and OS classification (Section 5.3.2).

Given 10 queries from a resolver drawing source ports uniformly from a
pool of size *s*, the normalized observed range ``R/(s-1)`` follows a
Beta distribution with parameters alpha=9, beta=2 (the distribution of
the range of n=10 uniform order statistics).  The paper fits this model
to lab data per OS, derives range cutoffs that minimize misclassification
between adjacent pool sizes, and then classifies Internet resolvers by
their observed ranges (Table 4, Figures 3a/3b).

This module implements: the Beta model, the Windows DNS wrapped-pool
port adjustment algorithm (reproduced verbatim from the paper), the
cutoff optimizer, the resulting classifier, and the sequential-pattern
detectors used in Section 5.2.3.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from functools import lru_cache

from scipy import stats

from ..oskernel.ports import (
    IANA_EPHEMERAL_HIGH,
    IANA_EPHEMERAL_LOW,
    WINDOWS_DNS_POOL_SIZE,
)

#: Order-statistic parameters for the range of n=10 uniform samples.
SAMPLE_SIZE = 10
BETA_ALPHA = SAMPLE_SIZE - 1
BETA_BETA = 2

#: Known ephemeral pool sizes, as the paper states them (Section 5.3.2).
POOL_WINDOWS_DNS = 2500
POOL_FREEBSD = 16383
POOL_LINUX = 28232
POOL_FULL = 64511


class PortRangeClass(enum.Enum):
    """Table 4 rows: observed source-port-range buckets.

    ``os_label`` carries the OS attribution for the three buckets the
    model identifies; the others are boundary/buffer buckets.
    """

    ZERO = ("0", 0, 0, None)
    TINY = ("1-200", 1, 200, None)
    LOW = ("201-940", 201, 940, None)
    WINDOWS = ("941-2,488 (Windows DNS)", 941, 2488, "Windows")
    MID = ("2,489-6,124", 2489, 6124, None)
    FREEBSD = ("6,125-16,331 (FreeBSD)", 6125, 16331, "FreeBSD")
    LINUX = ("16,332-28,222 (Linux)", 16332, 28222, "Linux")
    FULL = ("28,223-65,536 (Full Port Range)", 28223, 65536, None)

    def __init__(
        self, label: str, low: int, high: int, os_label: str | None
    ) -> None:
        self.label = label
        self.low = low
        self.high = high
        self.os_label = os_label


def classify_range(range_value: int) -> PortRangeClass:
    """Map an observed source-port range onto its Table 4 bucket."""
    if range_value < 0:
        raise ValueError(f"negative range: {range_value}")
    for bucket in PortRangeClass:
        if bucket.low <= range_value <= bucket.high:
            return bucket
    raise ValueError(f"range out of bounds: {range_value}")


# -- Beta model -------------------------------------------------------------


def range_distribution(pool_size: int) -> stats.rv_continuous:
    """Frozen Beta(9, 2) distribution of the range for *pool_size*.

    The support is scaled to ``[0, pool_size - 1]``, the largest range a
    pool of that size can produce.
    """
    if pool_size < 2:
        raise ValueError(f"pool too small for a range model: {pool_size}")
    return stats.beta(BETA_ALPHA, BETA_BETA, loc=0, scale=pool_size - 1)


def range_pdf(range_value: float, pool_size: int) -> float:
    """Density of observing *range_value* from a pool of *pool_size*."""
    return float(range_distribution(pool_size).pdf(range_value))


def optimize_cutoff(
    small_pool: int, large_pool: int, *, weight_small: float = 0.5
) -> tuple[int, float]:
    """Find the range cutoff best separating two pool sizes.

    Returns ``(cutoff, error)`` where *error* is the weighted total
    misclassification probability: ranges above the cutoff from the
    small pool plus ranges at/below it from the large pool.  This is
    the optimization the paper applies between FreeBSD and Linux
    (cutoff 16,331) and between Linux and the full range (28,222).
    """
    if small_pool >= large_pool:
        raise ValueError("small_pool must be smaller than large_pool")
    dist_small = range_distribution(small_pool)
    dist_large = range_distribution(large_pool)

    def error(cutoff: float) -> float:
        misses_small = 1.0 - float(dist_small.cdf(cutoff))
        misses_large = float(dist_large.cdf(cutoff))
        return weight_small * misses_small + (1 - weight_small) * misses_large

    low, high = 0, large_pool - 1
    best_cutoff, best_error = low, error(low)
    # The error is unimodal in the crossover region; a coarse-to-fine
    # grid search is robust and plenty fast.
    step = max((high - low) // 512, 1)
    grid = range(low, high + 1, step)
    for cutoff in grid:
        e = error(cutoff)
        if e < best_error:
            best_cutoff, best_error = cutoff, e
    for cutoff in range(
        max(low, best_cutoff - step), min(high, best_cutoff + step) + 1
    ):
        e = error(cutoff)
        if e < best_error:
            best_cutoff, best_error = cutoff, e
    return best_cutoff, best_error


def quantile_cutoff(pool_size: int, accuracy: float = 0.999) -> int:
    """Range below which *accuracy* of samples from *pool_size* fall.

    Used for the buffer buckets, "selected to achieve 99.9%
    classification accuracy" in the paper's words.
    """
    return int(math.ceil(float(range_distribution(pool_size).ppf(accuracy))))


# -- Windows wrapped-pool adjustment (verbatim from Section 5.3.2) ----------


def adjust_wrapped_ports(
    ports: list[int],
    *,
    pool_size: int = WINDOWS_DNS_POOL_SIZE,
    iana_min: int = IANA_EPHEMERAL_LOW,
    iana_max: int = IANA_EPHEMERAL_HIGH,
) -> list[int]:
    """Un-wrap a Windows DNS port sample split across the IANA range.

    Let ``R_low = [iana_min, iana_min + s - 1]`` and ``R_high =
    (iana_max - (s - 1), iana_max]``.  If every observed port falls in
    one of the two regions and both regions are represented, the sample
    plausibly comes from a pool that wrapped around the top of the IANA
    range; ports in the low region are lifted by ``iana_max - iana_min``
    so the computed range reflects the contiguous pool.  Otherwise the
    ports are returned unchanged.
    """
    if not ports:
        return []
    r_low_high = iana_min + pool_size - 1
    r_high_low = iana_max - (pool_size - 1)

    def in_low(port: int) -> bool:
        return iana_min <= port <= r_low_high

    def in_high(port: int) -> bool:
        return r_high_low < port <= iana_max

    all_in_regions = all(in_low(p) or in_high(p) for p in ports)
    has_low = any(in_low(p) for p in ports)
    has_high = any(in_high(p) for p in ports)
    if not (all_in_regions and has_low and has_high):
        return list(ports)
    shift = iana_max - iana_min
    return [p + shift if in_low(p) else p for p in ports]


# -- sequential pattern analysis (Section 5.2.3) -----------------------------


def is_strictly_increasing(ports: list[int]) -> bool:
    """True if each port is strictly greater than its predecessor."""
    return all(b > a for a, b in zip(ports, ports[1:]))


def is_increasing_with_wrap(ports: list[int]) -> bool:
    """True for a strictly increasing sequence with exactly one wrap.

    Matches the Section 5.2.3 observation: counters that climb to a
    maximum and then restart from the bottom of their pool.
    """
    if len(ports) < 2:
        return True
    drops = sum(1 for a, b in zip(ports, ports[1:]) if b <= a)
    if drops == 0:
        return False  # strictly increasing, no wrap
    if drops != 1:
        return False
    wrap_at = next(i for i, (a, b) in enumerate(zip(ports, ports[1:])) if b <= a)
    before = ports[: wrap_at + 1]
    after = ports[wrap_at + 1 :]
    return (
        is_strictly_increasing(before)
        and is_strictly_increasing(after)
        and (not after or after[0] < before[0])
    )


@lru_cache(maxsize=None)
def _stirling2(n: int, k: int) -> int:
    """Stirling numbers of the second kind."""
    if n == k:
        return 1
    if k == 0 or k > n:
        return 0
    return k * _stirling2(n - 1, k) + _stirling2(n - 1, k - 1)


def probability_unique_at_most(
    pool_size: int, draws: int, max_unique: int
) -> float:
    """P(#distinct values <= max_unique) for uniform draws from a pool.

    The paper notes that observing <= 7 unique ports out of 10 queries
    would occur only ~0.066% of the time if the pool truly held 200
    ports — evidence the effective pool is far smaller (Section 5.2.3).
    """
    if pool_size <= 0 or draws <= 0:
        raise ValueError("pool_size and draws must be positive")
    total = 0.0
    for unique in range(1, min(max_unique, draws, pool_size) + 1):
        arrangements = _stirling2(draws, unique)
        falling = 1.0
        for i in range(unique):
            falling *= pool_size - i
        total += arrangements * falling
    return total / pool_size**draws


@dataclass(frozen=True, slots=True)
class RangeObservation:
    """Ports observed from one resolver, with derived statistics."""

    ports: tuple[int, ...]
    adjusted: bool = False

    @property
    def range(self) -> int:
        return max(self.ports) - min(self.ports)

    @property
    def unique_ports(self) -> int:
        return len(set(self.ports))

    @property
    def bucket(self) -> PortRangeClass:
        return classify_range(self.range)


def observe(
    ports: list[int], *, windows_adjust: bool = False
) -> RangeObservation:
    """Build a :class:`RangeObservation`, optionally un-wrapping Windows
    pools first (the paper applies the adjustment to resolvers p0f
    identified as Windows)."""
    if not ports:
        raise ValueError("no ports observed")
    if windows_adjust:
        adjusted_ports = adjust_wrapped_ports(ports)
        return RangeObservation(
            tuple(adjusted_ports), adjusted=adjusted_ports != list(ports)
        )
    return RangeObservation(tuple(ports))
